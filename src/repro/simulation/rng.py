"""Deterministic random-number management.

All randomness in the simulator flows through a :class:`RandomSource`, which
wraps :class:`numpy.random.Generator` and hands out *named substreams*.  Two
properties matter for a reproduction of a randomized-protocol paper:

* **Reproducibility** — a run is a pure function of its seed.  Every entity
  (Alice, each node, the adversary, the channel) draws from its own substream,
  so adding an entity or reordering draws in one entity never perturbs another.
* **Independence** — the paper's analysis relies on protocol participants
  acting independently per slot; independent substreams make that explicit.

Substreams are derived with :class:`numpy.random.SeedSequence.spawn`, the
recommended mechanism for statistically independent child generators.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional

import numpy as np

from .errors import ConfigurationError

__all__ = ["RandomSource", "derive_seed"]


def _stable_label_hash(label: object) -> int:
    """A process-independent 32-bit hash of a stream label.

    The built-in ``hash`` is salted per interpreter process for strings, which
    would make runs reproducible only within a single process; CRC-32 of the
    label's ``repr`` is stable everywhere.
    """

    return zlib.crc32(repr(label).encode("utf-8")) & 0xFFFFFFFF


def derive_seed(seed: int, *labels: object) -> int:
    """Derive a child seed from ``seed`` and a sequence of hashable labels.

    The derivation is deterministic and label-order sensitive, making it easy
    to construct distinct but reproducible seeds for repeated trials, e.g.
    ``derive_seed(base, "E1", trial_index)``.
    """

    entropy = [seed & 0xFFFFFFFF]
    for label in labels:
        entropy.append(_stable_label_hash(label))
    seq = np.random.SeedSequence(entropy)
    return int(seq.generate_state(1, dtype=np.uint32)[0])


class RandomSource:
    """A seeded source of independent random substreams.

    Parameters
    ----------
    seed:
        Non-negative integer seed.  Two :class:`RandomSource` instances built
        from the same seed produce identical streams for identical requests.
    """

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise ConfigurationError(f"seed must be an integer, got {type(seed).__name__}")
        if seed < 0:
            raise ConfigurationError(f"seed must be non-negative, got {seed}")
        self._seed = int(seed)
        self._root = np.random.SeedSequence(self._seed)
        self._streams: Dict[str, np.random.Generator] = {}
        # A private counter used to spawn children deterministically in the
        # order streams are first requested.
        self._spawned: Dict[str, np.random.SeedSequence] = {}

    @property
    def seed(self) -> int:
        """The root seed this source was constructed with."""

        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the substream registered under ``name``, creating it if needed.

        Streams are memoised: requesting the same name twice returns the same
        generator object, preserving its internal state across calls.
        """

        if name not in self._streams:
            child = np.random.SeedSequence(
                [self._seed & 0xFFFFFFFF, _stable_label_hash(name)]
            )
            self._spawned[name] = child
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def generator_for(self, kind: str, identifier: Optional[object] = None) -> np.random.Generator:
        """Convenience wrapper building a stream name from a kind and id.

        ``generator_for("node", 17)`` and ``generator_for("alice")`` give the
        idiomatic naming used throughout the engines.
        """

        name = kind if identifier is None else f"{kind}:{identifier}"
        return self.stream(name)

    def spawn(self, label: object) -> "RandomSource":
        """Create an independent child :class:`RandomSource`.

        Used by the experiment harness to give each trial its own source
        without coupling trial outcomes to each other.
        """

        return RandomSource(derive_seed(self._seed, label))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomSource(seed={self._seed}, streams={sorted(self._streams)})"
