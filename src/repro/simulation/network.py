"""The network container.

:class:`Network` instantiates the whole cast of the Alice-versus-Carol game
from a :class:`~repro.simulation.config.SimulationConfig`: Alice, the ``n``
correct nodes, the (aggregate) adversary ledger for Carol plus her Byzantine
devices, the shared channel, the authenticator, and the root random source.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from .auth import ALICE_ID, Authenticator
from .channel import Channel
from .config import SimulationConfig
from .energy import BudgetPolicy, EnergyLedger, LedgerArray
from .errors import ConfigurationError
from .node import Device, Role
from .rng import RandomSource
from .topology import Topology, build_topology

__all__ = ["Network"]


class Network:
    """All devices and shared infrastructure for one simulation run.

    Parameters
    ----------
    config:
        The model parameters.
    seed:
        Optional seed override; defaults to ``config.seed``.
    enforce_adversary_budget:
        When ``True`` (default) the adversary ledger uses the ``CAP`` policy,
        so Carol physically cannot jam once her aggregate budget is exhausted
        — exactly the mechanism Lemma 11 relies on.
    topology:
        Optional pre-built :class:`~repro.simulation.topology.Topology`.
        When omitted, the topology is realised from ``config.topology``
        (single-hop when that is ``None``) using the network's own seeded
        random source, so runs stay a pure function of the seed.  The spec's
        ``sparse`` field (or the device-count crossover) decides whether the
        realised graph is held as a dense matrix or a CSR neighbour list;
        :meth:`topology_memory_bytes` reports the resulting footprint.
    """

    def __init__(
        self,
        config: SimulationConfig,
        seed: int | None = None,
        enforce_adversary_budget: bool = True,
        topology: Topology | None = None,
    ) -> None:
        self.config = config
        self.random_source = RandomSource(config.seed if seed is None else seed)
        if topology is not None:
            if topology.n != config.n:
                raise ConfigurationError(
                    f"topology is over n={topology.n} nodes but config has n={config.n}"
                )
            self.topology = topology
        else:
            self.topology = build_topology(config.topology, config.n, self.random_source)
        self.channel = Channel(topology=self.topology)
        self.authenticator = Authenticator()
        self.message_payload = "m"
        self.message_signature = self.authenticator.sign(self.message_payload)

        self.alice = Device.alice(budget=config.alice_budget)
        # The n correct nodes are a homogeneous population charged in bulk by
        # the vectorised engine every phase: their accounting lives in one
        # array-backed ledger, and each Device holds a per-row view that
        # satisfies the full EnergyLedger interface.
        self.node_ledgers = LedgerArray(
            "node", config.n, config.node_budget, policy=BudgetPolicy.RECORD
        )
        self.nodes: List[Device] = [
            Device(device_id=i, role=Role.CORRECT, ledger=self.node_ledgers.view(i))
            for i in range(config.n)
        ]
        adversary_policy = BudgetPolicy.CAP if enforce_adversary_budget else BudgetPolicy.RECORD
        self.adversary_ledger = EnergyLedger(
            owner="carol",
            budget=config.adversary_total_budget,
            policy=adversary_policy,
        )

    # ------------------------------------------------------------------ #
    # Lookup helpers                                                      #
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of correct nodes."""

        return self.config.n

    def device(self, device_id: int) -> Device:
        """Return the device with the given id (Alice is ``-1``)."""

        if device_id == ALICE_ID:
            return self.alice
        if 0 <= device_id < len(self.nodes):
            return self.nodes[device_id]
        raise ConfigurationError(f"unknown device id {device_id}")

    def node_ids(self) -> Sequence[int]:
        """All correct node ids, in order."""

        return range(self.config.n)

    def topology_memory_bytes(self) -> int:
        """Bytes held by the realised radio-graph adjacency.

        Dense backends count the boolean matrix (plus its cached float32
        cast, once built); sparse backends count the CSR arrays; the implicit
        single-hop topology stores nothing.  Benchmarks use this to verify
        that large-n runs stay within the sparse memory envelope.
        """

        return self.topology.memory_bytes()

    # ------------------------------------------------------------------ #
    # Cost accounting                                                     #
    # ------------------------------------------------------------------ #

    @property
    def alice_cost(self) -> float:
        return self.alice.ledger.spent

    @property
    def adversary_cost(self) -> float:
        return self.adversary_ledger.spent

    def node_costs(self) -> np.ndarray:
        """Vector of per-node energy expenditure (index = node id)."""

        return self.node_ledgers.spent_array()

    def max_node_cost(self) -> float:
        if not self.nodes:
            return 0.0
        return float(self.node_ledgers.spent_array().max())

    def mean_node_cost(self) -> float:
        if not self.nodes:
            return 0.0
        return float(np.mean(self.node_costs()))

    def total_correct_cost(self) -> float:
        """Aggregate cost of Alice plus every correct node."""

        return self.alice_cost + float(self.node_costs().sum())

    def cost_snapshot(self) -> Dict[str, float]:
        """A flat summary used by outcomes, metrics, and reports."""

        costs = self.node_costs()
        return {
            "alice": self.alice_cost,
            "adversary": self.adversary_cost,
            "node_mean": float(costs.mean()) if costs.size else 0.0,
            "node_max": float(costs.max()) if costs.size else 0.0,
            "node_total": float(costs.sum()),
        }

    def budget_overruns(self) -> Dict[str, float]:
        """Per-participant budget overdrafts (empty when all budgets held)."""

        overruns: Dict[str, float] = {}
        if self.alice.ledger.overdraft > 0:
            overruns["alice"] = self.alice.ledger.overdraft
        node_overdrafts = self.node_ledgers.overdraft_array()
        for node_id in np.flatnonzero(node_overdrafts > 0):
            overruns[self.nodes[int(node_id)].label] = float(node_overdrafts[node_id])
        if self.adversary_ledger.overdraft > 0:
            overruns["carol"] = self.adversary_ledger.overdraft
        return overruns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Network({self.config.describe()})"
