"""Energy accounting.

Energy is the central resource of the paper: sending, listening, jamming, or
altering a message each cost one unit, while sleeping is free.  The
:class:`EnergyLedger` records per-operation expenditure for a device, and can
optionally *enforce* the budget (used for Carol, whose jamming must stop when
her budget is exhausted) or merely *record* it (used for correct devices, whose
budget sufficiency is a theorem we check rather than a constraint we impose).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict

from .errors import BudgetExceededError, ConfigurationError

__all__ = ["EnergyOperation", "EnergyLedger", "BudgetPolicy"]


class EnergyOperation(enum.Enum):
    """The unit-cost operations of the paper's cost model."""

    SEND = "send"
    LISTEN = "listen"
    JAM = "jam"
    SPOOF = "spoof"

    @property
    def unit_cost(self) -> float:
        """All modelled operations cost exactly one unit (sleeping is free)."""

        return 1.0


class BudgetPolicy(enum.Enum):
    """How a ledger reacts when expenditure would exceed the budget."""

    RECORD = "record"
    """Record the overdraft but allow it (used for correct devices)."""

    ENFORCE = "enforce"
    """Refuse the operation by raising :class:`BudgetExceededError`."""

    CAP = "cap"
    """Silently refuse the operation and report failure to the caller."""


@dataclass
class EnergyLedger:
    """Per-device energy ledger.

    Parameters
    ----------
    owner:
        Human-readable owner label used in error messages (e.g. ``"node:17"``).
    budget:
        The device's energy budget.  ``math.inf`` disables budget pressure.
    policy:
        What to do when an operation would push expenditure past the budget.
    """

    owner: str
    budget: float
    policy: BudgetPolicy = BudgetPolicy.RECORD
    _spent: float = field(default=0.0, init=False)
    _by_operation: Dict[EnergyOperation, float] = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        if self.budget < 0:
            raise ConfigurationError(f"budget for {self.owner!r} must be non-negative, got {self.budget}")

    @property
    def spent(self) -> float:
        """Total energy spent so far."""

        return self._spent

    @property
    def remaining(self) -> float:
        """Budget minus expenditure (never negative under CAP/ENFORCE)."""

        return max(self.budget - self._spent, 0.0)

    @property
    def exhausted(self) -> bool:
        """``True`` once the device can no longer afford a unit-cost operation."""

        return self.remaining < 1.0 and not math.isinf(self.budget)

    @property
    def overdraft(self) -> float:
        """How far expenditure exceeds the budget (0 when within budget)."""

        return max(self._spent - self.budget, 0.0)

    def spent_on(self, operation: EnergyOperation) -> float:
        """Energy spent on a particular operation kind."""

        return self._by_operation.get(operation, 0.0)

    def can_afford(self, units: float = 1.0) -> bool:
        """Whether ``units`` more energy can be spent without exceeding the budget."""

        if math.isinf(self.budget):
            return True
        return self._spent + units <= self.budget + 1e-9

    def charge(self, operation: EnergyOperation, units: float = 1.0) -> bool:
        """Charge ``units`` of ``operation`` to this ledger.

        Returns ``True`` if the expenditure was applied and ``False`` if it was
        refused (only possible under :attr:`BudgetPolicy.CAP`).  Under
        :attr:`BudgetPolicy.ENFORCE` an unaffordable charge raises
        :class:`BudgetExceededError`.
        """

        if units < 0:
            raise ConfigurationError(f"cannot charge negative energy ({units}) to {self.owner!r}")
        if units == 0:
            return True
        if not self.can_afford(units):
            if self.policy is BudgetPolicy.ENFORCE:
                raise BudgetExceededError(self.owner, self.budget, self._spent + units)
            if self.policy is BudgetPolicy.CAP:
                return False
        self._spent += units
        self._by_operation[operation] = self._by_operation.get(operation, 0.0) + units
        return True

    def charge_bulk(self, operation: EnergyOperation, units: float) -> float:
        """Charge up to ``units`` of ``operation``, capping at the budget.

        Used by the vectorised engine, which knows in aggregate how many slots
        a device used in a phase.  Returns the number of units actually
        charged (which is less than ``units`` only under CAP/ENFORCE when the
        budget binds; ENFORCE still raises if *any* overdraft would occur).
        """

        if units < 0:
            raise ConfigurationError(f"cannot charge negative energy ({units}) to {self.owner!r}")
        if units == 0:
            return 0.0
        if not self.can_afford(units):
            if self.policy is BudgetPolicy.ENFORCE:
                raise BudgetExceededError(self.owner, self.budget, self._spent + units)
            if self.policy is BudgetPolicy.CAP:
                units = self.remaining
                if units <= 0:
                    return 0.0
        self._spent += units
        self._by_operation[operation] = self._by_operation.get(operation, 0.0) + units
        return units

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict summary suitable for metrics and reports."""

        summary = {"spent": self._spent, "budget": self.budget, "overdraft": self.overdraft}
        for operation in EnergyOperation:
            summary[operation.value] = self._by_operation.get(operation, 0.0)
        return summary

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EnergyLedger(owner={self.owner!r}, spent={self._spent:g}, budget={self.budget:g})"
