"""Energy accounting.

Energy is the central resource of the paper: sending, listening, jamming, or
altering a message each cost one unit, while sleeping is free.  The
:class:`EnergyLedger` records per-operation expenditure for a device, and can
optionally *enforce* the budget (used for Carol, whose jamming must stop when
her budget is exhausted) or merely *record* it (used for correct devices, whose
budget sufficiency is a theorem we check rather than a constraint we impose).

For the ``n`` correct nodes — a homogeneous population charged in bulk every
phase by the vectorised engine — per-device ``EnergyLedger`` objects are a
large-``n`` bottleneck: ~``n`` Python-level ``charge_bulk`` calls per phase.
:class:`LedgerArray` therefore keeps the whole population's accounting in
numpy arrays and charges any subset in one vector operation
(:meth:`LedgerArray.charge_bulk_many`); :meth:`LedgerArray.view` hands out
per-device :class:`LedgerView` objects that satisfy the full
:class:`EnergyLedger` interface, so everything that inspects or charges one
node at a time (the slot engine, metrics, tests) is unaffected by the layout.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from .errors import BudgetExceededError, ConfigurationError

__all__ = ["EnergyOperation", "EnergyLedger", "BudgetPolicy", "LedgerArray", "LedgerView"]


class EnergyOperation(enum.Enum):
    """The unit-cost operations of the paper's cost model."""

    SEND = "send"
    LISTEN = "listen"
    JAM = "jam"
    SPOOF = "spoof"

    @property
    def unit_cost(self) -> float:
        """All modelled operations cost exactly one unit (sleeping is free)."""

        return 1.0


class BudgetPolicy(enum.Enum):
    """How a ledger reacts when expenditure would exceed the budget."""

    RECORD = "record"
    """Record the overdraft but allow it (used for correct devices)."""

    ENFORCE = "enforce"
    """Refuse the operation by raising :class:`BudgetExceededError`."""

    CAP = "cap"
    """Silently refuse the operation and report failure to the caller."""


@dataclass
class EnergyLedger:
    """Per-device energy ledger.

    Parameters
    ----------
    owner:
        Human-readable owner label used in error messages (e.g. ``"node:17"``).
    budget:
        The device's energy budget.  ``math.inf`` disables budget pressure.
    policy:
        What to do when an operation would push expenditure past the budget.
    """

    owner: str
    budget: float
    policy: BudgetPolicy = BudgetPolicy.RECORD
    _spent: float = field(default=0.0, init=False)
    _by_operation: Dict[EnergyOperation, float] = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        if self.budget < 0:
            raise ConfigurationError(f"budget for {self.owner!r} must be non-negative, got {self.budget}")

    @property
    def spent(self) -> float:
        """Total energy spent so far."""

        return self._spent

    @property
    def remaining(self) -> float:
        """Budget minus expenditure (never negative under CAP/ENFORCE)."""

        return max(self.budget - self._spent, 0.0)

    @property
    def exhausted(self) -> bool:
        """``True`` once the device can no longer afford a unit-cost operation."""

        return self.remaining < 1.0 and not math.isinf(self.budget)

    @property
    def overdraft(self) -> float:
        """How far expenditure exceeds the budget (0 when within budget)."""

        return max(self._spent - self.budget, 0.0)

    def spent_on(self, operation: EnergyOperation) -> float:
        """Energy spent on a particular operation kind."""

        return self._by_operation.get(operation, 0.0)

    def can_afford(self, units: float = 1.0) -> bool:
        """Whether ``units`` more energy can be spent without exceeding the budget."""

        if math.isinf(self.budget):
            return True
        return self._spent + units <= self.budget + 1e-9

    def charge(self, operation: EnergyOperation, units: float = 1.0) -> bool:
        """Charge ``units`` of ``operation`` to this ledger.

        Returns ``True`` if the expenditure was applied and ``False`` if it was
        refused (only possible under :attr:`BudgetPolicy.CAP`).  Under
        :attr:`BudgetPolicy.ENFORCE` an unaffordable charge raises
        :class:`BudgetExceededError`.
        """

        if units < 0:
            raise ConfigurationError(f"cannot charge negative energy ({units}) to {self.owner!r}")
        if units == 0:
            return True
        if not self.can_afford(units):
            if self.policy is BudgetPolicy.ENFORCE:
                raise BudgetExceededError(self.owner, self.budget, self._spent + units)
            if self.policy is BudgetPolicy.CAP:
                return False
        self._spent += units
        self._by_operation[operation] = self._by_operation.get(operation, 0.0) + units
        return True

    def charge_bulk(self, operation: EnergyOperation, units: float) -> float:
        """Charge up to ``units`` of ``operation``, capping at the budget.

        Used by the vectorised engine, which knows in aggregate how many slots
        a device used in a phase.  Returns the number of units actually
        charged (which is less than ``units`` only under CAP/ENFORCE when the
        budget binds; ENFORCE still raises if *any* overdraft would occur).
        """

        if units < 0:
            raise ConfigurationError(f"cannot charge negative energy ({units}) to {self.owner!r}")
        if units == 0:
            return 0.0
        if not self.can_afford(units):
            if self.policy is BudgetPolicy.ENFORCE:
                raise BudgetExceededError(self.owner, self.budget, self._spent + units)
            if self.policy is BudgetPolicy.CAP:
                units = self.remaining
                if units <= 0:
                    return 0.0
        self._spent += units
        self._by_operation[operation] = self._by_operation.get(operation, 0.0) + units
        return units

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict summary suitable for metrics and reports."""

        summary = {"spent": self._spent, "budget": self.budget, "overdraft": self.overdraft}
        for operation in EnergyOperation:
            summary[operation.value] = self._by_operation.get(operation, 0.0)
        return summary

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EnergyLedger(owner={self.owner!r}, spent={self._spent:g}, budget={self.budget:g})"


class LedgerArray:
    """Array-backed energy accounting for a homogeneous device population.

    One shared ``budget``/``policy`` pair and one numpy row per device.  The
    vectorised engine charges whole phase cohorts through
    :meth:`charge_bulk_many`; per-device access goes through :meth:`view`,
    which behaves exactly like an :class:`EnergyLedger` for that row.

    Parameters
    ----------
    owner_prefix:
        Label stem for per-device owners (device ``i`` is ``"{prefix}:{i}"``).
    count:
        Number of devices in the population.
    budget:
        The shared per-device energy budget.
    policy:
        The shared :class:`BudgetPolicy` (correct nodes use ``RECORD``).
    """

    def __init__(
        self,
        owner_prefix: str,
        count: int,
        budget: float,
        policy: BudgetPolicy = BudgetPolicy.RECORD,
    ) -> None:
        if count < 0:
            raise ConfigurationError(f"ledger array count must be non-negative, got {count}")
        if budget < 0:
            raise ConfigurationError(
                f"budget for {owner_prefix!r} must be non-negative, got {budget}"
            )
        self.owner_prefix = owner_prefix
        self.count = count
        self.budget = float(budget)
        self.policy = policy
        self._spent = np.zeros(count, dtype=float)
        self._by_operation: Dict[EnergyOperation, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # Bulk interface (the vectorised engine's hot path)                   #
    # ------------------------------------------------------------------ #

    def charge_bulk_many(
        self, operation: EnergyOperation, indices, units
    ) -> np.ndarray:
        """Charge ``units[i]`` of ``operation`` to device ``indices[i]``, vectorised.

        The array analogue of calling :meth:`EnergyLedger.charge_bulk` once
        per device: under ``CAP`` each device's charge is clipped to its own
        remaining budget, under ``ENFORCE`` any overdraft raises, and under
        ``RECORD`` (the correct-node policy) the whole call is two fancy-index
        operations.  ``indices`` must not contain duplicates (phase cohorts
        never do).  Returns the per-device units actually charged.
        """

        indices = np.asarray(indices, dtype=np.int64)
        units = np.asarray(units, dtype=float)
        if units.shape != indices.shape:
            raise ConfigurationError(
                f"charge_bulk_many needs one unit amount per index: "
                f"{indices.shape} indices vs {units.shape} units"
            )
        if indices.size == 0:
            return units.copy()
        if np.any(units < 0):
            raise ConfigurationError(
                f"cannot charge negative energy to {self.owner_prefix!r}"
            )
        if self.policy is not BudgetPolicy.RECORD and not math.isinf(self.budget):
            overdraft = self._spent[indices] + units > self.budget + 1e-9
            if self.policy is BudgetPolicy.ENFORCE and overdraft.any():
                first = int(indices[np.argmax(overdraft)])
                raise BudgetExceededError(
                    f"{self.owner_prefix}:{first}",
                    self.budget,
                    float(self._spent[first] + units[np.argmax(overdraft)]),
                )
            if self.policy is BudgetPolicy.CAP:
                units = np.minimum(units, np.maximum(self.budget - self._spent[indices], 0.0))
        self._spent[indices] += units
        per_op = self._by_operation.get(operation)
        if per_op is None:
            per_op = self._by_operation.setdefault(operation, np.zeros(self.count, dtype=float))
        per_op[indices] += units
        return units

    def spent_array(self) -> np.ndarray:
        """Copy of per-device total expenditure, indexed by device row."""

        return self._spent.copy()

    def overdraft_array(self) -> np.ndarray:
        """Per-device overdraft (zeros when every budget held)."""

        return np.maximum(self._spent - self.budget, 0.0)

    def view(self, index: int) -> "LedgerView":
        """An :class:`EnergyLedger`-compatible handle on one device's row."""

        if not (0 <= index < self.count):
            raise ConfigurationError(
                f"ledger array {self.owner_prefix!r} has {self.count} rows, asked for {index}"
            )
        return LedgerView(self, index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LedgerArray(owner_prefix={self.owner_prefix!r}, count={self.count}, "
            f"budget={self.budget:g})"
        )


class LedgerView:
    """One device's slice of a :class:`LedgerArray`.

    Implements the :class:`EnergyLedger` interface (``spent``, ``charge``,
    ``charge_bulk``, ``snapshot``, ...) against the shared arrays, so code
    that charges or inspects a single device — the slot engine, metrics,
    tests — cannot tell the two layouts apart.
    """

    __slots__ = ("_array", "_index", "owner")

    def __init__(self, array: LedgerArray, index: int) -> None:
        self._array = array
        self._index = index
        self.owner = f"{array.owner_prefix}:{index}"

    @property
    def budget(self) -> float:
        return self._array.budget

    @property
    def policy(self) -> BudgetPolicy:
        return self._array.policy

    @property
    def spent(self) -> float:
        return float(self._array._spent[self._index])

    @property
    def remaining(self) -> float:
        return max(self.budget - self.spent, 0.0)

    @property
    def exhausted(self) -> bool:
        return self.remaining < 1.0 and not math.isinf(self.budget)

    @property
    def overdraft(self) -> float:
        return max(self.spent - self.budget, 0.0)

    def spent_on(self, operation: EnergyOperation) -> float:
        per_op = self._array._by_operation.get(operation)
        return float(per_op[self._index]) if per_op is not None else 0.0

    def can_afford(self, units: float = 1.0) -> bool:
        if math.isinf(self.budget):
            return True
        return self.spent + units <= self.budget + 1e-9

    def charge(self, operation: EnergyOperation, units: float = 1.0) -> bool:
        if units < 0:
            raise ConfigurationError(f"cannot charge negative energy ({units}) to {self.owner!r}")
        if units == 0:
            return True
        if not self.can_afford(units):
            if self.policy is BudgetPolicy.ENFORCE:
                raise BudgetExceededError(self.owner, self.budget, self.spent + units)
            if self.policy is BudgetPolicy.CAP:
                return False
        self._apply(operation, units)
        return True

    def charge_bulk(self, operation: EnergyOperation, units: float) -> float:
        if units < 0:
            raise ConfigurationError(f"cannot charge negative energy ({units}) to {self.owner!r}")
        if units == 0:
            return 0.0
        if not self.can_afford(units):
            if self.policy is BudgetPolicy.ENFORCE:
                raise BudgetExceededError(self.owner, self.budget, self.spent + units)
            if self.policy is BudgetPolicy.CAP:
                units = self.remaining
                if units <= 0:
                    return 0.0
        self._apply(operation, units)
        return units

    def _apply(self, operation: EnergyOperation, units: float) -> None:
        self._array._spent[self._index] += units
        per_op = self._array._by_operation.get(operation)
        if per_op is None:
            per_op = self._array._by_operation.setdefault(
                operation, np.zeros(self._array.count, dtype=float)
            )
        per_op[self._index] += units

    def snapshot(self) -> Dict[str, float]:
        summary = {"spent": self.spent, "budget": self.budget, "overdraft": self.overdraft}
        for operation in EnergyOperation:
            summary[operation.value] = self.spent_on(operation)
        return summary

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LedgerView(owner={self.owner!r}, spent={self.spent:g}, budget={self.budget:g})"
