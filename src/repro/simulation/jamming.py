"""Materialising a :class:`~repro.simulation.phaseplan.JamPlan` into concrete slots.

Both engines share this logic so that a given adversary strategy produces the
same *kind* of attack regardless of which engine executes it:

* explicit ``slot_indices`` are used verbatim (clipped to the phase length);
* a ``jam_rate`` is realised as independent per-slot coin flips;
* a ``num_jam_slots`` count is realised as a uniformly random subset of the
  phase's slots — or, for *reactive* plans, as the earliest slots that carry
  correct-side channel activity (the reactive jammer senses the channel within
  the slot and only spends energy when there is something to disrupt).

Budget capping is applied by the caller (the engines), because only they know
how much of Carol's aggregate budget remains at the moment of each attack.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .phaseplan import JamPlan

__all__ = ["materialize_jam_slots", "materialize_spoof_slots"]


def materialize_jam_slots(
    plan: JamPlan,
    num_slots: int,
    rng: np.random.Generator,
    activity_mask: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Return the sorted slot offsets (0-based within the phase) to jam.

    Parameters
    ----------
    plan:
        The adversary's committed plan.
    num_slots:
        Length of the phase.
    rng:
        Random generator used for rate-based and random-subset selection.
    activity_mask:
        For reactive plans, a boolean array of length ``num_slots`` marking
        slots that carry correct-side transmissions.  Required when
        ``plan.reactive`` is set and the plan selects by count or rate.
    """

    if num_slots <= 0:
        return np.empty(0, dtype=np.int64)

    if plan.slot_indices is not None:
        indices = np.unique(np.asarray(plan.slot_indices, dtype=np.int64))
        return indices[(indices >= 0) & (indices < num_slots)]

    if plan.reactive:
        if activity_mask is None:
            raise ValueError("reactive jam plans require an activity mask")
        active = np.flatnonzero(np.asarray(activity_mask, dtype=bool))
        if plan.jam_rate is not None:
            keep = rng.random(active.size) < plan.jam_rate
            return active[keep]
        count = min(plan.num_jam_slots, active.size)
        return active[:count]

    if plan.jam_rate is not None:
        mask = rng.random(num_slots) < plan.jam_rate
        return np.flatnonzero(mask)

    count = min(plan.num_jam_slots, num_slots)
    if count <= 0:
        return np.empty(0, dtype=np.int64)
    return np.sort(rng.choice(num_slots, size=count, replace=False))


def materialize_spoof_slots(
    count: int,
    num_slots: int,
    rng: np.random.Generator,
    exclude: Sequence[int] = (),
) -> np.ndarray:
    """Pick ``count`` distinct slots for Byzantine spoofed transmissions.

    ``exclude`` lists slots that should not be chosen (e.g. slots already
    being jammed — jamming and spoofing the same slot would waste energy).
    """

    if count <= 0 or num_slots <= 0:
        return np.empty(0, dtype=np.int64)
    excluded = set(int(x) for x in exclude)
    candidates = np.array([s for s in range(num_slots) if s not in excluded], dtype=np.int64)
    if candidates.size == 0:
        return np.empty(0, dtype=np.int64)
    chosen = min(count, candidates.size)
    return np.sort(rng.choice(candidates, size=chosen, replace=False))
