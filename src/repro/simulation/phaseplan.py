"""Phase-level execution interface shared by the two engines.

The ε-Broadcast protocol (and every baseline we compare against) is organised
into *phases*: contiguous blocks of slots during which every participant acts
independently and identically per slot with role-specific probabilities.  The
engines therefore execute one :class:`PhasePlan` at a time and return a
:class:`PhaseResult`; the protocol orchestrators in :mod:`repro.core` own all
state transitions between phases.

The adversary participates through the :class:`AdversaryStrategy` protocol: at
the start of every phase she is shown a :class:`PhaseContext` (everything an
adaptive adversary is allowed to know — the full history and the protocol's
public parameters) and must commit to a :class:`JamPlan`.  Reactive
capabilities (jamming conditioned on within-slot channel activity) are
expressed by the plan's ``reactive`` flag and are honoured by both engines.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Protocol, Sequence, Tuple, runtime_checkable

import numpy as np

from .channel import JamTargeting
from .config import SimulationConfig
from .events import PhaseRecord

__all__ = [
    "PhaseKind",
    "PhasePlan",
    "PhaseRoles",
    "PhaseContext",
    "JamPlan",
    "PhaseResult",
    "AdversaryStrategy",
    "clip_probability",
]


def clip_probability(p: float) -> float:
    """Clamp a protocol-derived probability into ``[0, 1]``.

    The paper's probabilities (e.g. ``2·ln n / 2^i``) exceed one in the very
    first rounds; the intended semantics is simply "act in every slot".
    """

    if p < 0.0:
        return 0.0
    if p > 1.0:
        return 1.0
    return p


class PhaseKind(enum.Enum):
    """The three phase types of ε-Broadcast (baselines reuse them loosely)."""

    INFORM = "inform"
    PROPAGATION = "propagation"
    REQUEST = "request"


@dataclass(frozen=True)
class PhasePlan:
    """Per-slot action probabilities for every role during one phase.

    All probabilities are per-slot and independent across slots and devices,
    matching the protocol's design (which is what makes it immune to adaptive
    adversaries).  Probabilities are clipped to ``[0, 1]`` on construction.

    Attributes
    ----------
    name:
        Display name, e.g. ``"inform"`` or ``"propagation:2"``.
    kind:
        The :class:`PhaseKind`.
    round_index:
        The protocol round ``i`` this phase belongs to.
    num_slots:
        Number of slots in the phase.
    step:
        Propagation step index ``h`` (1-based); 0 for non-propagation phases.
    alice_send_prob:
        Probability Alice transmits ``m`` in a slot.
    alice_listen_prob:
        Probability Alice listens in a slot (request phase only).
    relay_send_prob:
        Probability each *relay* (node informed in the previous phase/step)
        transmits ``m`` in a slot.
    uninformed_listen_prob:
        Probability each active uninformed node listens in a slot.
    nack_send_prob:
        Probability each active uninformed node sends a nack in a slot
        (request phase only).
    decoy_send_prob:
        Probability each active correct node transmits a decoy in a slot
        (reactive-adversary variant of §4.1).
    """

    name: str
    kind: PhaseKind
    round_index: int
    num_slots: int
    step: int = 0
    alice_send_prob: float = 0.0
    alice_listen_prob: float = 0.0
    relay_send_prob: float = 0.0
    uninformed_listen_prob: float = 0.0
    nack_send_prob: float = 0.0
    decoy_send_prob: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "alice_send_prob", clip_probability(self.alice_send_prob))
        object.__setattr__(self, "alice_listen_prob", clip_probability(self.alice_listen_prob))
        object.__setattr__(self, "relay_send_prob", clip_probability(self.relay_send_prob))
        object.__setattr__(
            self, "uninformed_listen_prob", clip_probability(self.uninformed_listen_prob)
        )
        object.__setattr__(self, "nack_send_prob", clip_probability(self.nack_send_prob))
        object.__setattr__(self, "decoy_send_prob", clip_probability(self.decoy_send_prob))
        if self.num_slots < 0:
            raise ValueError(f"num_slots must be non-negative, got {self.num_slots}")

    @property
    def carries_payload(self) -> bool:
        """Whether the broadcast message can be delivered during this phase."""

        return self.alice_send_prob > 0.0 or self.relay_send_prob > 0.0


def _as_sorted_ids(ids: "Sequence[int] | FrozenSet[int] | np.ndarray") -> np.ndarray:
    """Canonicalise a role cohort into a sorted unique ``int64`` array.

    Arrays that are already strictly increasing (the cached views served by
    :class:`~repro.core.state.ProtocolState`) pass through without a copy, so
    building roles every phase costs O(n) at worst and O(1) on the hot path.
    """

    if isinstance(ids, np.ndarray) and ids.dtype == np.int64:
        if ids.size <= 1 or bool(np.all(np.diff(ids) > 0)):
            return ids
        return np.unique(ids)
    arr = np.asarray(sorted(ids), dtype=np.int64)
    if arr.size > 1 and not bool(np.all(np.diff(arr) > 0)):
        arr = np.unique(arr)
    return arr


class PhaseRoles:
    """Which devices play which role during one phase.

    Backed by sorted ``int64`` id arrays (``active_uninformed_ids``,
    ``relay_ids``, ``decoy_ids``) that the vectorised engine consumes
    directly; the historical frozenset attributes (``active_uninformed``,
    ``relays``, ``decoy_senders``) are materialised lazily for adversaries
    and tests that want set semantics.

    Attributes
    ----------
    active_uninformed:
        Correct node ids that are still active and have not received ``m``.
    relays:
        Correct node ids that received ``m`` in the immediately preceding
        phase (or propagation step) and will relay it during this phase.
    decoy_senders:
        Correct node ids that generate decoy traffic (§4.1); usually equal to
        ``active_uninformed`` in the reactive-tolerant variant, empty
        otherwise.
    alice_active:
        Whether Alice is still executing the protocol.
    """

    __slots__ = (
        "active_uninformed_ids",
        "relay_ids",
        "decoy_ids",
        "alice_active",
        "_uninformed_set",
        "_relay_set",
        "_decoy_set",
    )

    def __init__(
        self,
        active_uninformed: "Sequence[int] | FrozenSet[int] | np.ndarray" = (),
        relays: "Sequence[int] | FrozenSet[int] | np.ndarray" = (),
        decoy_senders: "Sequence[int] | FrozenSet[int] | np.ndarray" = (),
        alice_active: bool = True,
    ) -> None:
        self.active_uninformed_ids = _as_sorted_ids(active_uninformed)
        self.relay_ids = _as_sorted_ids(relays)
        self.decoy_ids = _as_sorted_ids(decoy_senders)
        self.alice_active = alice_active
        self._uninformed_set: Optional[FrozenSet[int]] = None
        self._relay_set: Optional[FrozenSet[int]] = None
        self._decoy_set: Optional[FrozenSet[int]] = None

    @property
    def active_uninformed(self) -> FrozenSet[int]:
        if self._uninformed_set is None:
            self._uninformed_set = frozenset(self.active_uninformed_ids.tolist())
        return self._uninformed_set

    @property
    def relays(self) -> FrozenSet[int]:
        if self._relay_set is None:
            self._relay_set = frozenset(self.relay_ids.tolist())
        return self._relay_set

    @property
    def decoy_senders(self) -> FrozenSet[int]:
        if self._decoy_set is None:
            self._decoy_set = frozenset(self.decoy_ids.tolist())
        return self._decoy_set

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PhaseRoles):
            return NotImplemented
        return (
            self.alice_active == other.alice_active
            and np.array_equal(self.active_uninformed_ids, other.active_uninformed_ids)
            and np.array_equal(self.relay_ids, other.relay_ids)
            and np.array_equal(self.decoy_ids, other.decoy_ids)
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.alice_active,
                self.active_uninformed_ids.tobytes(),
                self.relay_ids.tobytes(),
                self.decoy_ids.tobytes(),
            )
        )

    def __repr__(self) -> str:
        return (
            f"PhaseRoles(active_uninformed={self.active_uninformed_ids.size}, "
            f"relays={self.relay_ids.size}, decoys={self.decoy_ids.size}, "
            f"alice_active={self.alice_active})"
        )

    @staticmethod
    def of(
        active_uninformed: "Sequence[int] | FrozenSet[int] | np.ndarray",
        relays: "Sequence[int] | FrozenSet[int] | np.ndarray" = (),
        decoy_senders: "Sequence[int] | FrozenSet[int] | np.ndarray" = (),
        alice_active: bool = True,
    ) -> "PhaseRoles":
        return PhaseRoles(
            active_uninformed=active_uninformed,
            relays=relays,
            decoy_senders=decoy_senders,
            alice_active=alice_active,
        )


@dataclass(frozen=True)
class PhaseContext:
    """Everything an adaptive adversary may observe before a phase starts.

    Per §1.1, Carol "possesses full information on how nodes have behaved in
    the past" and knows the protocol and its parameters, but not the outcome
    of coin flips in the current slot.  The context therefore exposes the
    upcoming plan, the identities of active/informed nodes, and the full phase
    history — but nothing about future randomness.
    """

    plan: PhasePlan
    roles: PhaseRoles
    config: SimulationConfig
    history: Tuple[PhaseRecord, ...] = ()
    adversary_remaining_budget: float = float("inf")

    @property
    def num_active_uninformed(self) -> int:
        return len(self.roles.active_uninformed)


@dataclass(frozen=True)
class JamPlan:
    """The adversary's committed attack plan for one phase.

    Exactly one of the slot-selection mechanisms is used, checked in this
    order:

    1. ``slot_indices`` — explicit slots to jam (bursty / scheduled attacks);
    2. ``jam_rate`` — jam each slot independently with this probability;
    3. ``num_jam_slots`` — jam this many slots (a uniformly random subset, or
       the *first* active slots when ``reactive`` is set).

    ``targeting`` selects the victims per jammed slot (n-uniform jamming).
    ``spoof_nack_slots`` / ``spoof_payload_slots`` additionally make a
    Byzantine device transmit forged frames in that many slots; each such
    transmission costs one unit like any send.
    """

    num_jam_slots: int = 0
    jam_rate: Optional[float] = None
    slot_indices: Optional[Tuple[int, ...]] = None
    targeting: JamTargeting = field(default_factory=JamTargeting.everyone)
    reactive: bool = False
    spoof_nack_slots: int = 0
    spoof_payload_slots: int = 0

    @staticmethod
    def idle() -> "JamPlan":
        """A plan that attacks nothing."""

        return JamPlan(num_jam_slots=0, targeting=JamTargeting.none())

    @property
    def attacks_anything(self) -> bool:
        return (
            self.num_jam_slots > 0
            or (self.jam_rate is not None and self.jam_rate > 0)
            or bool(self.slot_indices)
            or self.spoof_nack_slots > 0
            or self.spoof_payload_slots > 0
        )


@dataclass(frozen=True)
class PhaseResult:
    """What happened during one executed phase.

    The engines charge energy ledgers directly; the result carries the
    protocol-visible consequences (who got informed, what the request-phase
    listeners heard) plus channel-level statistics for reporting.
    """

    plan: PhasePlan
    newly_informed: FrozenSet[int]
    jammed_slots: int
    adversary_spend: float
    alice_noisy_heard: int = 0
    node_noisy_heard: Dict[int, int] = field(default_factory=dict)
    delivery_slots: int = 0
    busy_slots: int = 0
    alice_send_slots: int = 0
    alice_listen_slots: int = 0
    spoofed_transmissions: int = 0

    @property
    def jammed_fraction(self) -> float:
        if self.plan.num_slots == 0:
            return 0.0
        return self.jammed_slots / self.plan.num_slots


@runtime_checkable
class AdversaryStrategy(Protocol):
    """Structural interface every adversary implementation satisfies."""

    def observe_phase(self, context: PhaseContext) -> None:
        """See the upcoming phase before planning.

        Orchestrators call this exactly once per phase, before
        :meth:`plan_phase`; strategies whose victim set is a function of time
        (mobile/adaptive disk jammers) re-resolve their targets here.
        """

    def plan_phase(self, context: PhaseContext) -> JamPlan:
        """Commit to an attack plan for the upcoming phase."""

    def observe_result(self, context: PhaseContext, result: PhaseResult) -> None:
        """Receive the phase outcome (adaptive adversaries learn from it)."""
