"""Device abstractions.

A *device* is anything with a radio and an energy budget: Alice, a correct
node, or one of Carol's Byzantine devices.  Protocol-level state (informed,
terminated, ...) lives in :mod:`repro.core.state`; this module only models the
physical device — identity, role, and energy ledger — which is all the
simulation substrate needs to know about.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from .energy import BudgetPolicy, EnergyLedger

__all__ = ["Role", "Device", "SlotAction", "ActionKind"]


class Role(enum.Enum):
    """Which side of the Alice-versus-Carol game a device plays on."""

    ALICE = "alice"
    CORRECT = "correct"
    BYZANTINE = "byzantine"


class ActionKind(enum.Enum):
    """The possible radio actions a device can take in one slot."""

    SLEEP = "sleep"
    SEND = "send"
    LISTEN = "listen"
    JAM = "jam"


@dataclass(frozen=True)
class SlotAction:
    """A single device's action for a single slot.

    ``payload`` carries the :class:`~repro.simulation.messages.Message` being
    transmitted when ``kind`` is ``SEND``; it is ``None`` otherwise.
    """

    kind: ActionKind
    payload: Optional[object] = None

    @staticmethod
    def sleep() -> "SlotAction":
        return SlotAction(ActionKind.SLEEP)

    @staticmethod
    def listen() -> "SlotAction":
        return SlotAction(ActionKind.LISTEN)

    @staticmethod
    def send(message: object) -> "SlotAction":
        return SlotAction(ActionKind.SEND, payload=message)

    @staticmethod
    def jam() -> "SlotAction":
        return SlotAction(ActionKind.JAM)


@dataclass
class Device:
    """A radio device participating in the network.

    Attributes
    ----------
    device_id:
        Integer identity.  Correct nodes use ``0 .. n-1``; Alice uses ``-1``;
        Byzantine devices are not individually instantiated (Carol's side is
        accounted in aggregate by the adversary's ledger).
    role:
        The :class:`Role` of the device.
    ledger:
        The device's :class:`~repro.simulation.energy.EnergyLedger`.
    label:
        Human-readable name used in traces and error messages.
    """

    device_id: int
    role: Role
    ledger: EnergyLedger
    label: str = field(default="")

    def __post_init__(self) -> None:
        if not self.label:
            self.label = f"{self.role.value}:{self.device_id}"

    @classmethod
    def alice(cls, budget: float, policy: BudgetPolicy = BudgetPolicy.RECORD) -> "Device":
        """Construct Alice with the given budget."""

        from .auth import ALICE_ID

        return cls(
            device_id=ALICE_ID,
            role=Role.ALICE,
            ledger=EnergyLedger(owner="alice", budget=budget, policy=policy),
            label="alice",
        )

    @classmethod
    def correct(cls, device_id: int, budget: float, policy: BudgetPolicy = BudgetPolicy.RECORD) -> "Device":
        """Construct a correct node with the given budget."""

        return cls(
            device_id=device_id,
            role=Role.CORRECT,
            ledger=EnergyLedger(owner=f"node:{device_id}", budget=budget, policy=policy),
        )

    @property
    def cost(self) -> float:
        """Total energy this device has spent."""

        return self.ledger.spent

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Device({self.label}, spent={self.ledger.spent:g}/{self.ledger.budget:g})"
