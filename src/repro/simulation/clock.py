"""Discrete slot clock.

Time in the paper is divided into slots grouped into *phases* grouped into
*rounds*.  :class:`SlotClock` tracks the global slot index plus the current
(round, phase) labels so that traces, metrics, and adversary observations can
all refer to a consistent notion of "when".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .errors import SimulationError

__all__ = ["SlotClock", "PhaseWindow"]


@dataclass(frozen=True)
class PhaseWindow:
    """The slot interval ``[start, end)`` occupied by one executed phase."""

    round_index: int
    phase_name: str
    start: int
    end: int

    @property
    def num_slots(self) -> int:
        return self.end - self.start

    def contains(self, slot: int) -> bool:
        return self.start <= slot < self.end


class SlotClock:
    """Monotone global slot counter with round/phase bookkeeping."""

    def __init__(self) -> None:
        self._slot = 0
        self._windows: List[PhaseWindow] = []
        self._open: Optional[Tuple[int, str, int]] = None

    @property
    def now(self) -> int:
        """The index of the next slot to execute (0-based)."""

        return self._slot

    @property
    def windows(self) -> Tuple[PhaseWindow, ...]:
        """All completed phase windows, in execution order."""

        return tuple(self._windows)

    def begin_phase(self, round_index: int, phase_name: str) -> None:
        """Mark the start of a phase at the current slot."""

        if self._open is not None:
            raise SimulationError(
                f"cannot begin phase {phase_name!r}: phase {self._open[1]!r} is still open"
            )
        self._open = (round_index, phase_name, self._slot)

    def advance(self, slots: int = 1) -> int:
        """Advance the clock by ``slots`` slots and return the new time."""

        if slots < 0:
            raise SimulationError(f"cannot advance the clock by a negative amount ({slots})")
        self._slot += slots
        return self._slot

    def end_phase(self) -> PhaseWindow:
        """Close the currently open phase and record its window."""

        if self._open is None:
            raise SimulationError("cannot end a phase: no phase is open")
        round_index, phase_name, start = self._open
        window = PhaseWindow(round_index=round_index, phase_name=phase_name, start=start, end=self._slot)
        self._windows.append(window)
        self._open = None
        return window

    def phase_of(self, slot: int) -> Optional[PhaseWindow]:
        """Return the phase window containing ``slot``, if any."""

        for window in self._windows:
            if window.contains(slot):
                return window
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SlotClock(now={self._slot}, phases={len(self._windows)})"
