"""Simulation configuration.

:class:`SimulationConfig` collects the model-level parameters of the paper's
Alice-versus-Carol game — network size, Byzantine ratio, the budget exponent
``k``, the allowed uninformed fraction ``ε``, and the budget constant ``C`` —
and derives the per-participant energy budgets exactly as §1.1 and Lemma 11
prescribe:

* each correct (and each Byzantine) node:  ``C · n^(1/k)``
* Alice:                                   ``C · n^(1/k) · ln^(k-1+1) n``
  (``C · n^(1/2) · ln n`` for ``k = 2``, ``C · n^(1/k) · ln^k n`` in general)
* Carol herself:                           the same as Alice (symmetry)
* Carol's side in aggregate:               Carol's own budget plus
                                           ``f · n`` node budgets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

from .errors import ConfigurationError
from .topology import TopologySpec

__all__ = ["SimulationConfig"]


@dataclass(frozen=True)
class SimulationConfig:
    """Model parameters for one Alice-versus-Carol game.

    Attributes
    ----------
    n:
        Number of correct nodes (excluding Alice).  The network is "dense", so
        experiments typically use ``n`` in the hundreds to thousands.
    f:
        Ratio of Byzantine devices to correct devices; Carol controls
        ``f · n`` devices.  Any ``f >= 0`` is allowed, including ``f > 1``.
    k:
        Budget exponent; budgets are ``O(n^(1/k))`` and the protocol achieves
        per-device cost ``Õ(T^(1/(k+1)))``.  Must be an integer ``>= 2``.
    epsilon:
        Upper bound on the fraction of correct nodes that may terminate
        without the message.
    c:
        High-probability constant: guarantees hold with probability at least
        ``1 - n^(-c)``; also parameterises the ``5·c·ln n`` termination rule.
    budget_constant:
        The constant ``C`` of Lemma 11, scaling every budget.
    seed:
        Root random seed for the run.
    epsilon_prime:
        The internal constant ``ε'`` that parameterises the protocol's
        probabilities and the request-phase thresholds.  The paper's proofs
        renormalise ``ε' ≪ ε`` (as small as ``ε/1024``); at the laptop-scale
        ``n`` used by the experiments such tiny values push every probability
        into saturation, so the default is ``1/64`` — the largest value for
        which the termination thresholds of Lemmas 4-7 still discriminate —
        and the achieved delivery fraction is *measured* rather than assumed.
    topology:
        Optional :class:`~repro.simulation.topology.TopologySpec` describing
        the radio graph.  ``None`` (default) is the paper's single shared
        channel; spatial specs (Gilbert / scale-free Gilbert) are realised
        deterministically by the network from the run's seed.
    """

    n: int
    f: float = 1.0
    k: int = 2
    epsilon: float = 0.1
    c: float = 2.0
    budget_constant: float = 16.0
    seed: int = 0
    epsilon_prime: Optional[float] = None
    topology: Optional[TopologySpec] = None

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ConfigurationError(f"n must be at least 2, got {self.n}")
        if self.f < 0:
            raise ConfigurationError(f"f must be non-negative, got {self.f}")
        if not isinstance(self.k, int) or self.k < 2:
            raise ConfigurationError(f"k must be an integer >= 2, got {self.k!r}")
        if not (0 < self.epsilon < 1):
            raise ConfigurationError(f"epsilon must lie in (0, 1), got {self.epsilon}")
        if self.c <= 0:
            raise ConfigurationError(f"c must be positive, got {self.c}")
        if self.budget_constant <= 0:
            raise ConfigurationError(f"budget_constant must be positive, got {self.budget_constant}")
        if self.epsilon_prime is not None and not (0 < self.epsilon_prime < 1):
            raise ConfigurationError(
                f"epsilon_prime must lie in (0, 1) when given, got {self.epsilon_prime}"
            )
        if self.seed < 0:
            raise ConfigurationError(f"seed must be non-negative, got {self.seed}")
        if self.topology is not None and not isinstance(self.topology, TopologySpec):
            raise ConfigurationError(
                f"topology must be a TopologySpec or None, got {type(self.topology).__name__}"
            )

    # ------------------------------------------------------------------ #
    # Derived quantities                                                  #
    # ------------------------------------------------------------------ #

    @property
    def eps_prime(self) -> float:
        """The internal ``ε'`` constant (defaults to ``1/64``; see class docs)."""

        if self.epsilon_prime is not None:
            return self.epsilon_prime
        return 1.0 / 64.0

    @property
    def log_n(self) -> float:
        """``ln n`` — the natural logarithm used throughout the protocol."""

        return math.log(self.n)

    @property
    def lg_n(self) -> float:
        """``lg n`` — the base-2 logarithm used for round indexing."""

        return math.log2(self.n)

    @property
    def byzantine_count(self) -> int:
        """Number of Byzantine devices Carol controls (``⌊f · n⌋``)."""

        return int(math.floor(self.f * self.n))

    @property
    def node_budget(self) -> float:
        """Energy budget of each correct (and Byzantine) node: ``C·n^(1/k)``."""

        return self.budget_constant * self.n ** (1.0 / self.k)

    @property
    def alice_budget(self) -> float:
        """Alice's budget: ``C·n^(1/2)·ln n`` for k=2, ``C·n^(1/k)·ln^k n`` otherwise."""

        log_power = 1 if self.k == 2 else self.k
        return self.budget_constant * self.n ** (1.0 / self.k) * self.log_n ** log_power

    @property
    def carol_budget(self) -> float:
        """Carol's personal budget, granted for symmetry with Alice."""

        return self.alice_budget

    @property
    def adversary_total_budget(self) -> float:
        """Aggregate budget of Carol plus her ``f·n`` Byzantine devices."""

        return self.carol_budget + self.byzantine_count * self.node_budget

    @property
    def latency_bound(self) -> float:
        """The paper's termination horizon ``O(n^(1+1/k))`` in slots.

        Used as a safety cap by the engines: a correct execution terminates
        well before a constant multiple of this bound.
        """

        return float(self.n ** (1.0 + 1.0 / self.k))

    @property
    def termination_threshold(self) -> float:
        """The ``5·c·ln n`` noisy-slot threshold of the request phase."""

        return 5.0 * self.c * self.log_n

    def with_(self, **changes: object) -> "SimulationConfig":
        """Return a copy of the configuration with the given fields replaced."""

        return replace(self, **changes)

    def describe(self) -> str:
        """A compact human-readable summary used by reports and examples."""

        summary = (
            f"n={self.n}, f={self.f:g}, k={self.k}, eps={self.epsilon:g}, "
            f"node_budget={self.node_budget:.1f}, alice_budget={self.alice_budget:.1f}, "
            f"adversary_budget={self.adversary_total_budget:.1f}"
        )
        if self.topology is not None and self.topology.kind != "single_hop":
            summary += f", topology={self.topology.kind}"
        return summary
