"""Shared cost / delivery metrics.

Both engines and every protocol (ε-Broadcast and the baselines) summarise
their runs through the same dataclasses so that experiments can compare
protocols apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

import numpy as np

__all__ = ["CostBreakdown", "DeliveryStats", "resource_competitive_ratio"]


@dataclass(frozen=True)
class CostBreakdown:
    """Energy expenditure of every side of the game at the end of a run."""

    alice: float
    node_mean: float
    node_max: float
    node_total: float
    adversary: float
    per_node: Optional[np.ndarray] = field(default=None, compare=False, repr=False)

    @staticmethod
    def from_snapshot(snapshot: Mapping[str, float], per_node: Optional[np.ndarray] = None) -> "CostBreakdown":
        return CostBreakdown(
            alice=float(snapshot["alice"]),
            node_mean=float(snapshot["node_mean"]),
            node_max=float(snapshot["node_max"]),
            node_total=float(snapshot["node_total"]),
            adversary=float(snapshot["adversary"]),
            per_node=per_node,
        )

    @property
    def correct_total(self) -> float:
        """Aggregate spend of Alice plus all correct nodes (global perspective)."""

        return self.alice + self.node_total

    def as_dict(self) -> Dict[str, float]:
        return {
            "alice": self.alice,
            "node_mean": self.node_mean,
            "node_max": self.node_max,
            "node_total": self.node_total,
            "adversary": self.adversary,
        }


@dataclass(frozen=True)
class DeliveryStats:
    """Who got the message and when the protocol finished."""

    n: int
    informed: int
    terminated_informed: int
    terminated_uninformed: int
    slots_elapsed: int
    rounds_executed: int
    alice_terminated: bool

    @property
    def delivery_fraction(self) -> float:
        """Fraction of correct nodes that received the message."""

        if self.n == 0:
            return 0.0
        return self.informed / self.n

    @property
    def uninformed(self) -> int:
        return self.n - self.informed

    @property
    def all_terminated(self) -> bool:
        return self.terminated_informed + self.terminated_uninformed >= self.n

    def as_dict(self) -> Dict[str, float]:
        return {
            "n": self.n,
            "informed": self.informed,
            "delivery_fraction": self.delivery_fraction,
            "terminated_informed": self.terminated_informed,
            "terminated_uninformed": self.terminated_uninformed,
            "slots_elapsed": self.slots_elapsed,
            "rounds_executed": self.rounds_executed,
            "alice_terminated": float(self.alice_terminated),
        }


def resource_competitive_ratio(device_cost: float, adversary_cost: float) -> float:
    """The local resource-competitive ratio ``device_cost / adversary_cost``.

    Values well below one mean the device got away cheaply relative to Carol;
    the paper guarantees this ratio shrinks polynomially (``T^{1/(k+1)} / T``)
    as the adversary spends more.  When the adversary spends nothing the ratio
    is reported as ``inf`` unless the device also spent nothing.
    """

    if adversary_cost <= 0:
        return 0.0 if device_cost <= 0 else float("inf")
    return device_cost / adversary_cost
