"""Single-channel collision and jamming semantics.

The channel resolves, for every listener, what it perceives in a slot given

* the set of frames transmitted in that slot,
* the adversary's jamming decision, which — because Carol is an *n-uniform*
  adversary — may apply to some listeners and not others.

The rules implemented here are exactly the paper's model (§1.1):

* two or more simultaneous transmissions collide; every listener hears noise;
* jamming is indistinguishable from a collision, and any data received in a
  jammed slot is discarded;
* the absence of channel activity cannot be forged: a slot is silent for a
  listener only if nobody transmitted *and* that listener was not jammed;
* a listener cannot hear its own transmission (senders never appear among
  listeners for the same slot).

When the channel is constructed with a spatial
:class:`~repro.simulation.topology.Topology`, audibility becomes per-listener:
a listener only perceives transmissions from devices within radio range, so
the same slot can deliver a message to one listener, collide for a second,
and be silent for a third.  The single-hop (default) case takes exactly the
pre-topology code path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, Mapping, Optional, Sequence

import numpy as np

from .errors import ProtocolViolationError
from .messages import Message
from .observation import Observation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .topology import Topology

__all__ = ["JamTargeting", "JamMode", "Channel", "SlotResolution"]


class JamMode(enum.Enum):
    """How a jamming action selects its victims (n-uniform targeting)."""

    NONE = "none"
    ALL = "all"
    ONLY = "only"
    EXCEPT = "except"


@dataclass(frozen=True)
class JamTargeting:
    """The adversary's per-slot, per-listener jamming decision.

    ``ALL`` jams every listener; ``ONLY`` jams exactly the listeners in
    ``nodes``; ``EXCEPT`` jams everyone *except* those in ``nodes`` (this is
    how an n-uniform Carol "decides which nodes receive m" during a blocked
    phase); ``NONE`` jams nobody.  Alice is addressed by her device id (-1)
    like any other listener.
    """

    mode: JamMode = JamMode.NONE
    nodes: frozenset = field(default_factory=frozenset)

    @staticmethod
    def none() -> "JamTargeting":
        return JamTargeting(JamMode.NONE)

    @staticmethod
    def everyone() -> "JamTargeting":
        return JamTargeting(JamMode.ALL)

    @staticmethod
    def only(nodes: Iterable[int]) -> "JamTargeting":
        return JamTargeting(JamMode.ONLY, frozenset(nodes))

    @staticmethod
    def sparing(nodes: Iterable[int]) -> "JamTargeting":
        """Jam everyone except ``nodes`` (the n-uniform "spare a set" move)."""

        return JamTargeting(JamMode.EXCEPT, frozenset(nodes))

    @property
    def is_active(self) -> bool:
        """Whether this decision jams at least one potential listener."""

        return self.mode is not JamMode.NONE

    def affects(self, listener_id: int) -> bool:
        """Whether ``listener_id`` perceives jamming under this decision."""

        if self.mode is JamMode.NONE:
            return False
        if self.mode is JamMode.ALL:
            return True
        if self.mode is JamMode.ONLY:
            return listener_id in self.nodes
        return listener_id not in self.nodes

    def nodes_sorted(self) -> np.ndarray:
        """The targeted device ids as a sorted ``int64`` array (cached).

        Mobile adversaries commit a *fresh* targeting every phase, so the
        membership test the engines run over the listener cohort must stay
        cheap; this array backs the vectorised :meth:`affects_array` and is
        built once per targeting object.
        """

        cached = getattr(self, "_nodes_sorted", None)
        if cached is None:
            cached = np.sort(np.fromiter(self.nodes, dtype=np.int64, count=len(self.nodes)))
            # repro-lint: disable=R7 -- lazy cache of a pure function of the frozen `nodes` field; recomputation yields the identical array
            object.__setattr__(self, "_nodes_sorted", cached)
        return cached

    def affects_array(self, listener_ids: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`affects` over a device-id array.

        This is how the engines resolve a phase's victim mask: one sorted
        membership test (``O(m log v)``) instead of ``m`` Python set lookups,
        which matters once a mobile jammer re-targets every phase at large
        ``n``.
        """

        listener_ids = np.asarray(listener_ids, dtype=np.int64)
        if self.mode is JamMode.NONE:
            return np.zeros(listener_ids.size, dtype=bool)
        if self.mode is JamMode.ALL:
            return np.ones(listener_ids.size, dtype=bool)
        members = self.nodes_sorted()
        if members.size == 0:
            membership = np.zeros(listener_ids.size, dtype=bool)
        else:
            pos = np.searchsorted(members, listener_ids)
            pos_clipped = np.minimum(pos, members.size - 1)
            membership = (pos < members.size) & (members[pos_clipped] == listener_ids)
        return membership if self.mode is JamMode.ONLY else ~membership


@dataclass(frozen=True)
class SlotResolution:
    """The outcome of one slot: per-listener observations plus channel facts."""

    observations: Mapping[int, Observation]
    transmission_count: int
    jammed_any: bool

    @property
    def busy(self) -> bool:
        """Whether the slot carried any transmission or jamming energy."""

        return self.transmission_count > 0 or self.jammed_any


class Channel:
    """The shared communication channel, optionally over a spatial topology.

    Parameters
    ----------
    topology:
        ``None`` (or a single-hop topology) gives the paper's shared channel:
        every transmission is audible to every listener.  A spatial topology
        restricts audibility to radio range per listener.
    """

    def __init__(self, topology: Optional["Topology"] = None) -> None:
        self.topology = topology

    def resolve_slot(
        self,
        transmissions: Sequence[Message],
        listeners: Iterable[int],
        jam: JamTargeting,
        slot: int = -1,
        senders: Iterable[int] = (),
    ) -> SlotResolution:
        """Resolve what every listener perceives in one slot.

        Parameters
        ----------
        transmissions:
            Frames transmitted this slot (one per transmitting device).
        listeners:
            Device ids listening this slot.  A device both sending and
            listening is a protocol violation (half-duplex radios).
        jam:
            The adversary's :class:`JamTargeting` for this slot.
        slot:
            Global slot index recorded on the observations (for traces).
        senders:
            Device ids of the transmitters, used only for the half-duplex
            sanity check; Byzantine transmitters may be omitted.
        """

        sender_set = set(senders)
        listener_set = set(listeners)
        overlap = sender_set & listener_set
        if overlap:
            raise ProtocolViolationError(
                f"devices {sorted(overlap)} attempted to send and listen in the same slot"
            )

        topology = self.topology
        spatial = topology is not None and not topology.is_single_hop

        count = len(transmissions)
        observations: Dict[int, Observation] = {}
        # Sorted so the observation mapping's insertion order depends on the
        # listener cohort's contents, never on set hash layout — the engines
        # iterate this mapping while mutating shared per-phase state.
        for listener in sorted(listener_set):
            jammed = jam.affects(listener)
            if spatial:
                # The neighbour set is memoised on the topology (dense row
                # scan or CSR slice, whichever backend is realised), so the
                # per-frame audibility test is a set-membership check.
                # Synthetic Byzantine senders (ids <= -2) are audible
                # everywhere by model fiat.
                neighbors = topology.neighbors(listener)
                audible = [
                    frame
                    for frame in transmissions
                    if frame.sender_id <= -2 or frame.sender_id in neighbors
                ]
            else:
                audible = transmissions
            heard = len(audible)
            if heard == 0:
                observations[listener] = (
                    Observation.noise(slot) if jammed else Observation.silent(slot)
                )
            elif heard == 1:
                observations[listener] = (
                    Observation.noise(slot)
                    if jammed
                    else Observation.of_message(audible[0], slot)
                )
            else:
                observations[listener] = Observation.noise(slot)
        return SlotResolution(
            observations=observations,
            transmission_count=count,
            jammed_any=jam.is_active,
        )
