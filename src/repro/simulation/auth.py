"""Authentication model.

The paper assumes a *partially authenticated* Byzantine model: Alice's public
key is known to every receiver, so frames carrying the broadcast message ``m``
can be verified, while every other identity — in particular correct nodes
sending nacks — can be spoofed by Carol.

We model exactly that consequence.  The :class:`Authenticator` holds a private
signing capability for Alice only; it can sign payloads and verify frames.
Byzantine devices can construct :class:`~repro.simulation.messages.Message`
frames of kind ``SPOOFED_PAYLOAD`` but cannot obtain a valid signature, so
``verify`` rejects them, matching the paper's "attempts to tamper with m or
spoof Alice can be detected".
"""

from __future__ import annotations

import hashlib
from typing import Any, Optional

from .errors import AuthenticationError
from .messages import Message, MessageKind

__all__ = ["Authenticator", "ALICE_ID"]

ALICE_ID = -1
"""Reserved device identifier for Alice, the trusted sender."""


class Authenticator:
    """Signs and verifies Alice's broadcast payloads.

    Parameters
    ----------
    secret:
        Secret keying material.  Only the entity holding the
        :class:`Authenticator` instance (the simulation harness, acting on
        Alice's behalf) can produce valid signatures; adversary code is only
        ever handed the :meth:`verify` capability via the public key, mirroring
        the paper's assumption that only Alice's key is disseminated.
    """

    def __init__(self, secret: str = "alice-secret") -> None:
        if not secret:
            raise AuthenticationError("authenticator secret must be non-empty")
        self._secret = secret

    def sign(self, payload: Any, sender_id: int = ALICE_ID) -> str:
        """Produce a signature binding ``payload`` to Alice's identity.

        Only Alice (``sender_id == ALICE_ID``) may sign; any other identity
        raises :class:`AuthenticationError`, modelling the fact that Carol
        cannot forge Alice's signature.
        """

        if sender_id != ALICE_ID:
            raise AuthenticationError(
                f"device {sender_id} attempted to sign as Alice; only Alice holds the signing key"
            )
        return self._digest(payload)

    def verify(self, message: Message) -> bool:
        """Return ``True`` iff ``message`` is an authentic copy of Alice's payload.

        Relayed copies of ``m`` sent by informed correct nodes carry Alice's
        original signature, so they verify even though the relaying sender is
        not Alice — exactly the property the propagation phase needs.
        """

        if message.kind is not MessageKind.PAYLOAD:
            return False
        if message.signature is None:
            return False
        return message.signature == self._digest(message.payload)

    def _digest(self, payload: Any) -> str:
        raw = f"{self._secret}|{payload!r}".encode("utf-8")
        return hashlib.sha256(raw).hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Authenticator(<secret hidden>)"
