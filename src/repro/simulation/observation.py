"""What a listening device perceives in a slot.

The paper's channel model (clear channel assessment, CCA) exposes three
observable outcomes to a listener:

* **silence** — nobody transmitted and the listener was not jammed;
* **noise** — a collision (two or more transmissions), jamming, or an
  undecodable frame; jamming is indistinguishable from collisions;
* **a message** — exactly one transmission reached the listener unjammed.

Silence cannot be forged: if any device transmits (or jams), every listener
perceives at least noise.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from .messages import Message

__all__ = ["ChannelState", "Observation"]


class ChannelState(enum.Enum):
    """The CCA-level outcome a listener perceives in one slot."""

    SILENT = "silent"
    NOISE = "noise"
    MESSAGE = "message"


@dataclass(frozen=True)
class Observation:
    """The full observation delivered to one listener for one slot.

    Attributes
    ----------
    state:
        The CCA-level :class:`ChannelState`.
    message:
        The decoded frame, present only when :attr:`state` is ``MESSAGE``.
    slot:
        Global slot index the observation belongs to.
    """

    state: ChannelState
    message: Optional[Message] = None
    slot: int = -1

    @property
    def is_noisy(self) -> bool:
        """``True`` when the slot is busy: noise *or* a decodable message.

        The request-phase termination rule counts "noisy slots", which in the
        paper means slots with channel activity; a successfully decoded nack
        is activity too.
        """

        return self.state in (ChannelState.NOISE, ChannelState.MESSAGE)

    @property
    def is_silent(self) -> bool:
        return self.state is ChannelState.SILENT

    @staticmethod
    def silent(slot: int = -1) -> "Observation":
        return Observation(state=ChannelState.SILENT, slot=slot)

    @staticmethod
    def noise(slot: int = -1) -> "Observation":
        return Observation(state=ChannelState.NOISE, slot=slot)

    @staticmethod
    def of_message(message: Message, slot: int = -1) -> "Observation":
        return Observation(state=ChannelState.MESSAGE, message=message, slot=slot)
