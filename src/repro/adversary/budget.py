"""Budget-splitting helpers for adversary strategies.

Several strategies want to spread a total spend allowance across the rounds of
a protocol execution.  Because round lengths grow geometrically, the natural
split is also geometric: commit a fixed fraction of the *remaining* allowance
to each attacked phase, so early phases are cheap and the strategy can always
afford to contest the round that matters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from ..simulation.errors import ConfigurationError

__all__ = ["GeometricBudgetAllocator"]


@dataclass
class GeometricBudgetAllocator:
    """Split an allowance across rounds, geometrically weighted toward later rounds.

    Parameters
    ----------
    total:
        The total spend allowance to distribute.
    ratio:
        Geometric growth ratio between consecutive rounds' allotments; with
        ε-Broadcast's round lengths the natural ratio is ``2^{1 + 1/k}``.
    first_round:
        The first round that may receive an allotment.
    last_round:
        The last round that may receive an allotment.
    """

    total: float
    ratio: float
    first_round: int
    last_round: int
    _granted: Dict[int, float] = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        if self.total < 0:
            raise ConfigurationError(f"total must be non-negative, got {self.total}")
        if self.ratio <= 0:
            raise ConfigurationError(f"ratio must be positive, got {self.ratio}")
        if self.last_round < self.first_round:
            raise ConfigurationError(
                f"last_round ({self.last_round}) must be >= first_round ({self.first_round})"
            )

    def allotment(self, round_index: int) -> float:
        """The energy allotted to ``round_index`` (0 outside the window)."""

        if round_index < self.first_round or round_index > self.last_round:
            return 0.0
        if round_index in self._granted:
            return self._granted[round_index]
        num_rounds = self.last_round - self.first_round + 1
        weights = [self.ratio ** j for j in range(num_rounds)]
        weight_sum = math.fsum(weights)
        share = self.total * weights[round_index - self.first_round] / weight_sum
        self._granted[round_index] = share
        return share

    def total_granted(self) -> float:
        """Sum of all allotments handed out so far."""

        return math.fsum(self._granted.values())
