"""Spoofing (Sybil-style) attacks.

Carol controls ``f·n`` Byzantine devices whose identities are
indistinguishable from correct nodes: she can impersonate receivers and ask
Alice to keep retransmitting, or inject frames that *claim* to be ``m``.
Because Alice's payload is authenticated, forged copies of ``m`` are detected
and discarded — but they still occupy the channel and collide with legitimate
traffic, so the attack degrades into (expensive) jamming.  This adversary
exists to exercise that code path and to demonstrate experimentally that
authentication confines spoofing to a nuisance.
"""

from __future__ import annotations

from typing import Optional

from ..simulation.channel import JamTargeting
from ..simulation.errors import ConfigurationError
from ..simulation.phaseplan import JamPlan, PhaseContext, PhaseKind
from .base import Adversary
from .parameters import ParamSpec

__all__ = ["SpoofingAdversary"]


class SpoofingAdversary(Adversary):
    """Inject forged payloads and nacks instead of raw noise.

    Parameters
    ----------
    payload_fraction:
        Fraction of each inform/propagation phase's slots in which a Byzantine
        device transmits a forged copy of ``m``.
    nack_fraction:
        Fraction of each request phase's slots in which a Byzantine device
        transmits a spoofed nack.
    max_total_spend:
        Optional cap on total expenditure.
    """

    name = "spoofing"

    tunable = (
        ParamSpec("payload_fraction", 0.0, 1.0,
                  description="fraction of payload slots overwritten with fakes"),
        ParamSpec("nack_fraction", 0.0, 1.0,
                  description="fraction of request slots filled with spoofed nacks"),
    )

    def __init__(
        self,
        payload_fraction: float = 0.5,
        nack_fraction: float = 0.5,
        max_total_spend: Optional[float] = None,
    ) -> None:
        super().__init__(max_total_spend=max_total_spend)
        for label, value in (("payload_fraction", payload_fraction), ("nack_fraction", nack_fraction)):
            if not (0.0 <= value <= 1.0):
                raise ConfigurationError(f"{label} must lie in [0, 1], got {value}")
        self.payload_fraction = payload_fraction
        self.nack_fraction = nack_fraction

    def _plan(self, context: PhaseContext, allowance: float) -> JamPlan:
        plan = context.plan
        if plan.kind in (PhaseKind.INFORM, PhaseKind.PROPAGATION):
            slots = int(round(self.payload_fraction * plan.num_slots))
            if slots <= 0:
                return JamPlan.idle()
            return JamPlan(spoof_payload_slots=slots, targeting=JamTargeting.none())
        if plan.kind is PhaseKind.REQUEST:
            slots = int(round(self.nack_fraction * plan.num_slots))
            if slots <= 0:
                return JamPlan.idle()
            return JamPlan(spoof_nack_slots=slots, targeting=JamTargeting.none())
        return JamPlan.idle()
