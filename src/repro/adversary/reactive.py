"""Reactive jamming.

A *reactive* Carol senses the channel (via RSSI / clear channel assessment)
within the current slot and jams only when she detects activity.  Against the
unmodified protocol this is devastatingly efficient: in the inform phase only
Alice transmits, so Carol can destroy every copy of ``m`` while paying exactly
as little as Alice does.  §4.1 defeats the attack by having correct nodes
generate decoy traffic that is indistinguishable from ``m`` at the RSSI level,
forcing Carol to waste energy jamming cover traffic.

:class:`ReactiveJammer` implements the attack with a per-phase energy
allotment; the engines honour the ``reactive`` flag by letting the jam land
only on slots that actually carry correct-side transmissions.
"""

from __future__ import annotations

import math
from typing import Optional

from ..simulation.channel import JamTargeting
from ..simulation.errors import ConfigurationError
from ..simulation.phaseplan import JamPlan, PhaseContext, PhaseKind
from .base import Adversary
from .parameters import ParamSpec

__all__ = ["ReactiveJammer"]


class ReactiveJammer(Adversary):
    """Jam only slots that carry correct-side transmissions.

    Parameters
    ----------
    phase_budget_fraction:
        Fraction of the remaining allowance the strategy is willing to commit
        to a single phase.  ``1.0`` lets a single long phase drain everything;
        smaller values spread the attack across rounds.
    target_kinds:
        Which phase kinds to attack; defaults to the payload-carrying phases
        (inform and propagation), which is where reactivity pays off.
    max_total_spend:
        Optional cap on total expenditure.
    """

    name = "reactive"

    tunable = (
        ParamSpec("phase_budget_fraction", 0.05, 1.0,
                  description="fraction of the per-phase listener budget spent reacting"),
    )

    def __init__(
        self,
        phase_budget_fraction: float = 1.0,
        target_kinds: Optional[set] = None,
        max_total_spend: Optional[float] = None,
    ) -> None:
        super().__init__(max_total_spend=max_total_spend)
        if not (0.0 < phase_budget_fraction <= 1.0):
            raise ConfigurationError(
                f"phase_budget_fraction must lie in (0, 1], got {phase_budget_fraction}"
            )
        self.phase_budget_fraction = phase_budget_fraction
        self.target_kinds = (
            set(target_kinds)
            if target_kinds is not None
            else {PhaseKind.INFORM, PhaseKind.PROPAGATION}
        )

    def _plan(self, context: PhaseContext, allowance: float) -> JamPlan:
        plan = context.plan
        if plan.kind not in self.target_kinds:
            return JamPlan.idle()
        phase_allotment = int(math.floor(allowance * self.phase_budget_fraction))
        if phase_allotment <= 0:
            return JamPlan.idle()
        return JamPlan(
            num_jam_slots=min(phase_allotment, plan.num_slots),
            targeting=JamTargeting.everyone(),
            reactive=True,
        )
