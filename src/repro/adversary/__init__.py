"""Adversary ("Carol") strategies.

Every strategy implements the
:class:`~repro.simulation.phaseplan.AdversaryStrategy` protocol by subclassing
:class:`~repro.adversary.base.Adversary`.  The catalogue covers the attacks the
paper reasons about — phase blocking, n-uniform splitting, request-phase
spoofing, reactive jamming — plus the oblivious comparators (random, bursty,
continuous) used by the ablation experiments.
"""

from .base import Adversary
from .budget import GeometricBudgetAllocator
from .bursty import BurstyJammer
from .composite import CompositeAdversary, RoundSwitchingAdversary
from .continuous import ContinuousJammer
from .mobility import (
    MobileJammer,
    MultiDiskJammer,
    Orbit,
    RandomWalk,
    ReactiveDiskJammer,
    Trajectory,
    WaypointPatrol,
)
from .none import NullAdversary
from .parameters import ParamSpec
from .nuniform import NUniformSplitAdversary
from .phase_blocker import PhaseBlockingAdversary
from .random_jammer import RandomJammer
from .reactive import ReactiveJammer
from .request_spoofer import RequestSpoofingAdversary
from .spatial import SpatialJammer
from .sybil import SpoofingAdversary

__all__ = [
    "Adversary",
    "BurstyJammer",
    "CompositeAdversary",
    "ContinuousJammer",
    "GeometricBudgetAllocator",
    "MobileJammer",
    "MultiDiskJammer",
    "NullAdversary",
    "NUniformSplitAdversary",
    "Orbit",
    "ParamSpec",
    "PhaseBlockingAdversary",
    "RandomJammer",
    "RandomWalk",
    "ReactiveDiskJammer",
    "ReactiveJammer",
    "RequestSpoofingAdversary",
    "RoundSwitchingAdversary",
    "SpatialJammer",
    "SpoofingAdversary",
    "Trajectory",
    "WaypointPatrol",
]
