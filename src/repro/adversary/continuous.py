"""Continuous jamming.

Carol jams every slot of every phase until her budget (or her self-imposed
spend cap) runs out.  This is the crudest possible denial-of-service attack
and the one the latency lower bound (Corollary 1) refers to: with an aggregate
budget of ``Θ(n^{1+1/k})`` slots she can silence the channel for that long,
but no longer.
"""

from __future__ import annotations

from typing import Optional

from ..simulation.channel import JamTargeting
from ..simulation.phaseplan import JamPlan, PhaseContext
from .base import Adversary

__all__ = ["ContinuousJammer"]


class ContinuousJammer(Adversary):
    """Jam every slot until the budget is exhausted.

    Parameters
    ----------
    max_total_spend:
        Optional cap on total expenditure (the experiment knob ``T``).
    targeting:
        Jam victims per slot; defaults to everyone (1-uniform blanket noise).
    """

    name = "continuous"

    def __init__(
        self,
        max_total_spend: Optional[float] = None,
        targeting: Optional[JamTargeting] = None,
    ) -> None:
        super().__init__(max_total_spend=max_total_spend)
        self.targeting = targeting if targeting is not None else JamTargeting.everyone()

    def _plan(self, context: PhaseContext, allowance: float) -> JamPlan:
        return JamPlan(
            num_jam_slots=context.plan.num_slots,
            targeting=self.targeting,
        )
