"""Uniform parameter introspection for adversary strategies.

The tournament harness (:mod:`repro.tournament`) treats every roster
adversary as a point in a small box-constrained parameter space: the disk
radius of a spatial jammer, the duty cycle of a bursty one, the reactivity
threshold of a reactive one.  To enumerate and search that space without a
per-class ``if`` ladder, each :class:`~repro.adversary.base.Adversary`
declares its tunable knobs as :class:`ParamSpec` entries and the base class
turns them into a uniform ``tunable_parameters()`` /
``with_parameters(**values)`` surface (see ``base.py``).

A :class:`ParamSpec` is deliberately minimal — a closed numeric interval
plus an integrality flag — because that is exactly what a deterministic
grid-refinement optimiser needs: bounds to stay inside and a way to lay a
grid across them.  Anything richer (categorical knobs, conditional spaces)
stays out of scope until an experiment needs it.
"""

from __future__ import annotations

from dataclasses import dataclass
from numbers import Integral, Real
from typing import Optional, Tuple

from ..simulation.errors import ConfigurationError

__all__ = ["ParamSpec"]


@dataclass(frozen=True)
class ParamSpec:
    """One tunable adversary parameter: a closed interval ``[low, high]``.

    Parameters
    ----------
    name:
        Attribute name on the strategy (composite strategies prefix it).
    low, high:
        Inclusive bounds.  Values outside raise ``ConfigurationError``.
    integer:
        When true the parameter only takes integer values; :meth:`grid`
        emits ``int`` and :meth:`validate` rejects non-integral floats.
    description:
        One-line human summary for docs and the leaderboard.
    """

    name: str
    low: float
    high: float
    integer: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("ParamSpec needs a non-empty name")
        if not (self.low < self.high):
            raise ConfigurationError(
                f"ParamSpec({self.name!r}) needs low < high, got [{self.low}, {self.high}]"
            )

    def validate(self, value: object) -> float:
        """Coerce ``value`` to this spec's type, or raise ``ConfigurationError``."""

        if isinstance(value, bool) or not isinstance(value, (Integral, Real)):
            raise ConfigurationError(
                f"parameter {self.name!r} needs a number, got {value!r}"
            )
        if self.integer:
            if float(value) != int(value):
                raise ConfigurationError(
                    f"parameter {self.name!r} is integer-valued, got {value!r}"
                )
            coerced: float = int(value)
        else:
            coerced = float(value)
        if not (self.low <= coerced <= self.high):
            raise ConfigurationError(
                f"parameter {self.name!r}={coerced} outside [{self.low}, {self.high}]"
            )
        return coerced

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the bounds (and integrality)."""

        try:
            self.validate(value)
        except ConfigurationError:
            return False
        return True

    def grid(
        self, points: int, low: Optional[float] = None, high: Optional[float] = None
    ) -> Tuple[float, ...]:
        """``points`` evenly spaced in-bounds values over ``[low, high]``.

        The optional sub-interval is clipped to the spec bounds; integer
        specs round to distinct integers (so fewer than ``points`` values
        may come back on a narrow interval).
        """

        if points < 1:
            raise ConfigurationError(f"grid needs at least one point, got {points}")
        lo = self.low if low is None else max(self.low, float(low))
        hi = self.high if high is None else min(self.high, float(high))
        if hi < lo:
            lo = hi = max(self.low, min(self.high, lo))
        if points == 1 or hi == lo:
            values = [0.5 * (lo + hi)]
        else:
            step = (hi - lo) / (points - 1)
            values = [lo + step * i for i in range(points)]
        if self.integer:
            seen = []
            for value in values:
                rounded = int(round(value))
                rounded = int(max(self.low, min(self.high, rounded)))
                if rounded not in seen:
                    seen.append(rounded)
            return tuple(seen)
        return tuple(float(min(self.high, max(self.low, v))) for v in values)

    def span(self) -> float:
        """Interval width, used by the optimiser's shrinking windows."""

        return self.high - self.low
