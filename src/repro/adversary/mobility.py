"""Mobile and adaptive spatial adversaries.

PR 1's :class:`~repro.adversary.spatial.SpatialJammer` resolves its disk into
a victim set *once*, at ``bind_network`` time.  Real spatial denial is mobile:
a jammer drives, patrols, or chases.  This module makes the victim set a
function of time — every strategy here re-resolves its disk(s) against the
topology **each phase** through the orchestrators'
:meth:`~repro.adversary.base.Adversary.observe_phase` hook, using the
grid-accelerated :meth:`~repro.simulation.topology.Topology.nodes_in_disk`
query so per-phase re-targeting stays cheap at ``n = 10⁵`` on the CSR
backend.

Three strategy families:

* :class:`MobileJammer` — one disk whose centre follows a :class:`Trajectory`
  (:class:`WaypointPatrol`, :class:`RandomWalk`, :class:`Orbit`).  Oblivious:
  the path is fixed before the run, only the *victims* vary with time.
* :class:`MultiDiskJammer` — one budget split across ``k`` independently
  placed disks (each optionally on its own trajectory); the victim set is the
  union of the disks.  The geometric analogue of hitting several clusters at
  once, motivated by the heavy-tailed Gilbert graphs of arXiv:1411.6824 where
  a few well-placed disks over hubs are disproportionately damaging.
* :class:`ReactiveDiskJammer` — adaptive, knowledge-of-state (in the spirit
  of :mod:`repro.adversary.reactive`): each phase it re-centres greedily on
  the densest cluster of *active uninformed* listeners, optionally limited to
  a maximum speed.  This is the pursuit half of a pursuit/evasion game no
  static adversary can express.

Determinism: trajectories are pure functions of ``(constructor arguments,
phase index)`` — :class:`RandomWalk` derives its steps from a seeded
``numpy`` generator, which is process-stable — so a run with a mobile
adversary remains a pure function of its seeds.
"""

from __future__ import annotations

import abc
import math
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..simulation.errors import ConfigurationError
from ..simulation.phaseplan import JamPlan, PhaseContext
from .base import Adversary
from .parameters import ParamSpec
from .spatial import plan_disk_jam

__all__ = [
    "Trajectory",
    "WaypointPatrol",
    "RandomWalk",
    "Orbit",
    "MobileJammer",
    "MultiDiskJammer",
    "ReactiveDiskJammer",
]

Point = Tuple[float, float]


def _as_point(value: Sequence[float], what: str) -> Point:
    try:
        x, y = float(value[0]), float(value[1])
    except (TypeError, IndexError, ValueError) as exc:
        raise ConfigurationError(f"{what} must be an (x, y) pair, got {value!r}") from exc
    return (x, y)


# --------------------------------------------------------------------------- #
# Trajectories                                                                #
# --------------------------------------------------------------------------- #


class Trajectory(abc.ABC):
    """A deterministic path through the plane, sampled once per phase.

    ``position(t)`` is the disk centre during phase ``t`` (0-based count of
    phases since the strategy was bound).  Implementations must be pure
    functions of their constructor arguments and ``t`` — including across
    processes — so that runs stay reproducible; seeded randomness through
    ``numpy`` generators satisfies this.
    """

    @abc.abstractmethod
    def position(self, phase_index: int) -> Point:
        """The centre for phase ``phase_index`` (may lie outside the square)."""


class WaypointPatrol(Trajectory):
    """Patrol a waypoint polyline at constant speed.

    Parameters
    ----------
    waypoints:
        Two or more ``(x, y)`` points (one point gives a stationary jammer).
    speed:
        Distance travelled per phase, in unit-square units.
    closed:
        ``True`` (default) loops back to the first waypoint; ``False``
        ping-pongs back and forth along the open path.
    """

    def __init__(
        self, waypoints: Sequence[Sequence[float]], speed: float, closed: bool = True
    ) -> None:
        if not waypoints:
            raise ConfigurationError("WaypointPatrol needs at least one waypoint")
        if speed < 0:
            raise ConfigurationError(f"patrol speed must be non-negative, got {speed}")
        self.waypoints: List[Point] = [_as_point(w, "waypoint") for w in waypoints]
        self.speed = float(speed)
        self.closed = bool(closed)
        points = np.asarray(self.waypoints, dtype=float)
        if self.closed and len(self.waypoints) > 1 and tuple(points[-1]) != tuple(points[0]):
            points = np.vstack([points, points[0]])
        self._points = points
        segment_lengths = np.sqrt((np.diff(points, axis=0) ** 2).sum(axis=1))
        self._cumulative = np.concatenate([[0.0], np.cumsum(segment_lengths)])
        self._total = float(self._cumulative[-1])

    def position(self, phase_index: int) -> Point:
        if self._total == 0.0 or self.speed == 0.0:
            return self.waypoints[0]
        distance = phase_index * self.speed
        if self.closed:
            distance = distance % self._total
        else:
            period = 2.0 * self._total
            distance = distance % period
            if distance > self._total:
                distance = period - distance
        segment = int(np.searchsorted(self._cumulative, distance, side="right")) - 1
        segment = min(max(segment, 0), self._points.shape[0] - 2)
        seg_start = self._cumulative[segment]
        seg_len = self._cumulative[segment + 1] - seg_start
        fraction = 0.0 if seg_len == 0 else (distance - seg_start) / seg_len
        point = self._points[segment] + fraction * (self._points[segment + 1] - self._points[segment])
        return (float(point[0]), float(point[1]))


class Orbit(Trajectory):
    """Circle a fixed point: ``centre + r·(cos θ_t, sin θ_t)``.

    ``θ_t = initial_angle + angular_speed · t`` (radians per phase).
    """

    def __init__(
        self,
        center: Sequence[float] = (0.5, 0.5),
        orbit_radius: float = 0.25,
        angular_speed: float = 0.2,
        initial_angle: float = 0.0,
    ) -> None:
        if orbit_radius < 0:
            raise ConfigurationError(f"orbit radius must be non-negative, got {orbit_radius}")
        self.center = _as_point(center, "orbit center")
        self.orbit_radius = float(orbit_radius)
        self.angular_speed = float(angular_speed)
        self.initial_angle = float(initial_angle)

    def position(self, phase_index: int) -> Point:
        angle = self.initial_angle + self.angular_speed * phase_index
        return (
            self.center[0] + self.orbit_radius * math.cos(angle),
            self.center[1] + self.orbit_radius * math.sin(angle),
        )


class RandomWalk(Trajectory):
    """A seeded random walk with boundary reflection.

    Each phase the centre takes one step of length ``step`` in a uniformly
    random direction, reflecting off the unit-square walls.  The walk is a
    pure function of ``(start, step, seed)``: steps come from
    ``numpy.random.default_rng(seed)``, which is process-stable, and
    positions are memoised so ``position(t)`` may be queried in any order.
    """

    def __init__(
        self, start: Sequence[float] = (0.5, 0.5), step: float = 0.05, seed: int = 0
    ) -> None:
        if step < 0:
            raise ConfigurationError(f"walk step must be non-negative, got {step}")
        if seed < 0:
            raise ConfigurationError(f"walk seed must be non-negative, got {seed}")
        self.start = _as_point(start, "walk start")
        self.step = float(step)
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)
        self._points: List[Point] = [self.start]

    @staticmethod
    def _reflect(value: float) -> float:
        value = value % 2.0
        return 2.0 - value if value > 1.0 else value

    def position(self, phase_index: int) -> Point:
        if phase_index < 0:
            raise ConfigurationError(f"phase index must be non-negative, got {phase_index}")
        while len(self._points) <= phase_index:
            angle = float(self._rng.uniform(0.0, 2.0 * math.pi))
            x, y = self._points[-1]
            self._points.append(
                (
                    self._reflect(x + self.step * math.cos(angle)),
                    self._reflect(y + self.step * math.sin(angle)),
                )
            )
        return self._points[phase_index]


# --------------------------------------------------------------------------- #
# Per-phase re-resolving disk jammers                                         #
# --------------------------------------------------------------------------- #


class _PerPhaseDiskJammer(Adversary):
    """Shared machinery: victims re-resolved from disk geometry every phase.

    Subclasses implement :meth:`_resolve_victims`, which maps the current
    phase (index + context) to a victim set via
    :meth:`~repro.simulation.topology.Topology.nodes_in_disk`.  Resolution
    happens in :meth:`observe_phase` — the orchestrators call it before every
    :meth:`plan_phase`, and combining strategies forward it to every nested
    strategy — so the victim set tracks time even while the strategy idles.
    """

    def __init__(
        self,
        max_total_spend: Optional[float] = None,
        jam_request_phases: bool = False,
    ) -> None:
        super().__init__(max_total_spend=max_total_spend)
        self.jam_request_phases = jam_request_phases
        self._network = None
        self._victims: Optional[FrozenSet[int]] = None
        self._phase_index = 0
        self._coverage: set = set()

    # -- binding ------------------------------------------------------- #

    def bind_network(self, network) -> None:
        self._network = network
        self._victims = None
        self._phase_index = 0
        self._coverage = set()

    def _require_bound(self):
        if self._network is None:
            raise ConfigurationError(
                f"{type(self).__name__} used without bind_network(); the orchestrator "
                "must bind the adversary to the realised topology first"
            )
        return self._network

    # -- per-phase re-resolution --------------------------------------- #

    def observe_phase(self, context: PhaseContext) -> None:
        self._require_bound()
        self._victims = frozenset(self._resolve_victims(context))
        self._phase_index += 1

    def _plan(self, context: PhaseContext, allowance: float) -> JamPlan:
        self._require_bound()
        if self._victims is None:
            # plan_phase without a preceding observe_phase (direct engine
            # harnesses): resolve in place without advancing the clock.
            self._victims = frozenset(self._resolve_victims(context))
        plan = plan_disk_jam(context, self._victims, self.jam_request_phases)
        if plan.attacks_anything and allowance >= 1.0:
            # Coverage counts devices actually subjected to jamming: the disk
            # keeps moving after the budget dies, but those fly-overs are not
            # victims.  A fractional residual allowance (< 1) floors to zero
            # jam slots in the base class's plan cap, so it does not count
            # either.
            self._coverage.update(self._victims)
        return plan

    @abc.abstractmethod
    def _resolve_victims(self, context: PhaseContext) -> Iterable[int]:
        """Victim device ids for the phase about to run."""

    # -- reporting ------------------------------------------------------ #

    @property
    def victims(self) -> FrozenSet[int]:
        """Device ids targeted during the current phase (empty before binding)."""

        return self._victims if self._victims is not None else frozenset()

    @property
    def coverage(self) -> FrozenSet[int]:
        """Union of every victim set this strategy actually attacked.

        Phases where the plan came out idle (no active victims, empty disk,
        exhausted budget) do not count: a disk flying over already-informed
        nodes victimises nobody.
        """

        return frozenset(self._coverage)

    @property
    def phases_observed(self) -> int:
        """How many phases this strategy has been shown."""

        return self._phase_index


class MobileJammer(_PerPhaseDiskJammer):
    """A disk jammer whose centre follows a :class:`Trajectory`.

    On a single-hop topology every disk resolves to the whole clique
    (``nodes_in_disk`` returns everyone), so the strategy degrades to a plain
    payload-phase blocker exactly like the static
    :class:`~repro.adversary.spatial.SpatialJammer`.

    Parameters
    ----------
    trajectory:
        The path the disk centre follows (sampled once per phase).
    radius:
        Disk radius.
    max_total_spend:
        Optional cap on total expenditure (the experiment knob ``T``).
    jam_request_phases:
        Also jam request phases inside the disk (off by default).
    """

    name = "mobile"

    tunable = (
        ParamSpec("radius", 0.02, 0.5,
                  description="moving-disk radius in the unit square"),
    )

    def __init__(
        self,
        trajectory: Trajectory,
        radius: float = 0.25,
        max_total_spend: Optional[float] = None,
        jam_request_phases: bool = False,
    ) -> None:
        super().__init__(max_total_spend=max_total_spend, jam_request_phases=jam_request_phases)
        if not isinstance(trajectory, Trajectory):
            raise ConfigurationError(
                f"trajectory must be a Trajectory, got {type(trajectory).__name__}"
            )
        if radius < 0:
            raise ConfigurationError(f"jam radius must be non-negative, got {radius}")
        self.trajectory = trajectory
        self.radius = float(radius)
        self._center: Optional[Point] = None

    @property
    def center(self) -> Optional[Point]:
        """The disk centre used for the most recently resolved phase."""

        return self._center

    def _resolve_victims(self, context: PhaseContext) -> Iterable[int]:
        network = self._require_bound()
        self._center = self.trajectory.position(self._phase_index)
        return network.topology.nodes_in_disk(self._center, self.radius)


class MultiDiskJammer(_PerPhaseDiskJammer):
    """One budget split across ``k`` independently-placed disks.

    The victim set is the union of the disks, re-resolved every phase; the
    strategy's single ledger (and optional ``max_total_spend`` cap) pays for
    all of them, so adding disks widens coverage without adding budget —
    the spatial analogue of the paper's n-uniform splitting.

    Parameters
    ----------
    centers:
        One ``(x, y)`` centre per disk.
    radius:
        Shared disk radius, or one radius per disk.
    trajectories:
        Optional per-disk :class:`Trajectory` (``None`` entries stay at their
        centre); length must match ``centers``.
    """

    name = "multi_disk"

    tunable = (
        ParamSpec("radius", 0.02, 0.5,
                  description="shared radius applied to every disk"),
    )

    def __init__(
        self,
        centers: Sequence[Sequence[float]],
        radius: "float | Sequence[float]" = 0.15,
        trajectories: Optional[Sequence[Optional[Trajectory]]] = None,
        max_total_spend: Optional[float] = None,
        jam_request_phases: bool = False,
    ) -> None:
        super().__init__(max_total_spend=max_total_spend, jam_request_phases=jam_request_phases)
        if not centers:
            raise ConfigurationError("MultiDiskJammer needs at least one disk centre")
        self.centers: List[Point] = [_as_point(c, "disk centre") for c in centers]
        k = len(self.centers)
        radii = [float(radius)] * k if np.isscalar(radius) else [float(r) for r in radius]
        if len(radii) != k:
            raise ConfigurationError(
                f"got {len(radii)} radii for {k} disks; pass one radius or one per disk"
            )
        if any(r < 0 for r in radii):
            raise ConfigurationError(f"disk radii must be non-negative, got {radii}")
        self.radii = radii
        if trajectories is not None and len(trajectories) != k:
            raise ConfigurationError(
                f"got {len(trajectories)} trajectories for {k} disks"
            )
        self.trajectories = list(trajectories) if trajectories is not None else [None] * k
        for trajectory in self.trajectories:
            if trajectory is not None and not isinstance(trajectory, Trajectory):
                raise ConfigurationError(
                    f"trajectories entries must be Trajectory or None, "
                    f"got {type(trajectory).__name__}"
                )
        self._centers_now: List[Point] = list(self.centers)

    @property
    def disk_centers(self) -> List[Point]:
        """Per-disk centres used for the most recently resolved phase."""

        return list(self._centers_now)

    @property
    def radius(self) -> float:
        """The shared disk radius (the first, under per-disk radii)."""

        return self.radii[0]

    @radius.setter
    def radius(self, value: float) -> None:
        # The introspection surface exposes one "radius" knob; setting it
        # resizes every disk, matching the scalar-radius constructor form.
        self.radii = [float(value)] * len(self.radii)

    def _resolve_victims(self, context: PhaseContext) -> Iterable[int]:
        network = self._require_bound()
        topology = network.topology
        victims: set = set()
        centers_now: List[Point] = []
        for center, radius, trajectory in zip(self.centers, self.radii, self.trajectories):
            if trajectory is not None:
                center = trajectory.position(self._phase_index)
            centers_now.append(center)
            victims |= topology.nodes_in_disk(center, radius)
        self._centers_now = centers_now
        return victims


class ReactiveDiskJammer(_PerPhaseDiskJammer):
    """Re-centre greedily each phase on the densest active uninformed cluster.

    The adaptive member of the family: per §1.1 Carol has full knowledge of
    past behaviour and protocol state, so each phase this strategy buckets
    the *active uninformed* listeners into disk-sized cells, targets the
    fullest cell's centre of mass, and moves its disk there (teleporting when
    ``speed`` is ``None``, else by at most ``speed`` per phase).  On aspatial
    topologies there is nothing to chase and the disk covers the whole
    clique, degrading to a phase blocker.

    Parameters
    ----------
    radius:
        Disk radius (also the clustering cell size).
    speed:
        Maximum centre movement per phase; ``None`` re-places the disk freely.
    start:
        Initial disk centre.
    """

    name = "reactive_disk"

    tunable = (
        ParamSpec("radius", 0.02, 0.5,
                  description="pursuit-disk radius in the unit square"),
    )

    def __init__(
        self,
        radius: float = 0.25,
        speed: Optional[float] = None,
        start: Sequence[float] = (0.5, 0.5),
        max_total_spend: Optional[float] = None,
        jam_request_phases: bool = False,
    ) -> None:
        super().__init__(max_total_spend=max_total_spend, jam_request_phases=jam_request_phases)
        if radius < 0:
            raise ConfigurationError(f"jam radius must be non-negative, got {radius}")
        if speed is not None and speed < 0:
            raise ConfigurationError(f"speed must be non-negative or None, got {speed}")
        self.radius = float(radius)
        self.speed = speed if speed is None else float(speed)
        self.start = _as_point(start, "start")
        self._center: Point = self.start
        self._positions: Optional[np.ndarray] = None

    def bind_network(self, network) -> None:
        super().bind_network(network)
        self._center = self.start
        # One copy of the (n+1, 2) position table per run: per-phase cluster
        # detection then indexes it directly instead of issuing n Python
        # position() calls.  None on aspatial topologies (nothing to chase).
        self._positions = getattr(network.topology, "positions", None)

    @property
    def center(self) -> Point:
        """The disk centre used for the most recently resolved phase."""

        return self._center

    def _densest_cluster(self, positions: np.ndarray) -> Point:
        """Centre of mass of the fullest disk-sized window of listener positions.

        Listeners are bucketed into cells of side ``radius`` and each occupied
        cell is scored by its 3×3 neighbourhood (a disk of radius ``r``
        centred in a cell of side ``r`` spills into the adjacent cells); the
        disk targets the centre of mass of the winning window.  All
        vectorised: ``O(active listeners)`` per phase.
        """

        cell = max(self.radius, 1e-3)
        coords = np.floor(positions / cell).astype(np.int64)
        # Collapse (x, y) cells to scalar keys; the grid is tiny (≤ ~1/r per
        # axis) so a plain shift cannot collide.
        shift = np.int64(2 ** 20)
        keys = coords[:, 0] * shift + coords[:, 1]
        unique, counts = np.unique(keys, return_counts=True)
        # Score per occupied cell = points in its 3x3 window.
        scores = np.zeros(unique.size, dtype=np.int64)
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                neighbor = unique + dx * shift + dy
                pos = np.searchsorted(unique, neighbor)
                pos_clipped = np.minimum(pos, unique.size - 1)
                found = (pos < unique.size) & (unique[pos_clipped] == neighbor)
                scores[found] += counts[pos_clipped[found]]
        best = unique[int(np.argmax(scores))]
        in_window = (np.abs(coords[:, 0] - (best // shift)) <= 1) & (
            np.abs(coords[:, 1] - (best % shift)) <= 1
        )
        target = positions[in_window].mean(axis=0)
        return (float(target[0]), float(target[1]))

    def _step_towards(self, target: Point) -> Point:
        if self.speed is None:
            return target
        dx = target[0] - self._center[0]
        dy = target[1] - self._center[1]
        distance = math.hypot(dx, dy)
        if distance <= self.speed or distance == 0.0:
            return target
        scale = self.speed / distance
        return (self._center[0] + dx * scale, self._center[1] + dy * scale)

    def _resolve_victims(self, context: PhaseContext) -> Iterable[int]:
        network = self._require_bound()
        topology = network.topology
        if self._positions is not None:
            active = np.fromiter(
                (node for node in context.roles.active_uninformed if node >= 0),
                dtype=np.int64,
            )
            if active.size:
                # Node ids are topology rows (Alice-last convention).
                positions = self._positions[np.sort(active)]
                self._center = self._step_towards(self._densest_cluster(positions))
        return topology.nodes_in_disk(self._center, self.radius)
