"""Combining adversary strategies.

Real attacks mix tactics: block the inform phases while budget is plentiful,
then switch to cheap request-phase spoofing to squeeze out extra delay.
:class:`CompositeAdversary` dispatches each phase to the first sub-strategy
that produces a non-idle plan, and :class:`RoundSwitchingAdversary` switches
strategy at a given round boundary.  Both keep a single shared spend cap so
experiment budgets remain meaningful.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Sequence, Tuple

from ..simulation.errors import ConfigurationError
from ..simulation.phaseplan import JamPlan, PhaseContext, PhaseResult
from .base import Adversary
from .parameters import ParamSpec

__all__ = ["CompositeAdversary", "RoundSwitchingAdversary"]


def _prefixed_specs(prefix: str, strategy: Adversary) -> Dict[str, ParamSpec]:
    """A sub-strategy's tunables re-keyed under ``prefix.name``.

    Combining strategies expose their members' knobs this way so the
    tournament can enumerate (and the optimiser search) a composite the
    same as any leaf adversary.  Nesting composes: a composite inside a
    composite yields ``s0.s1.radius``-style names.
    """

    return {
        f"{prefix}.{name}": replace(spec, name=f"{prefix}.{name}")
        for name, spec in strategy.tunable_parameters().items()
    }


class CompositeAdversary(Adversary):
    """Try sub-strategies in priority order; use the first non-idle plan."""

    name = "composite"

    def __init__(
        self,
        strategies: Sequence[Adversary],
        max_total_spend: Optional[float] = None,
    ) -> None:
        super().__init__(max_total_spend=max_total_spend)
        if not strategies:
            raise ConfigurationError("CompositeAdversary requires at least one sub-strategy")
        self.strategies = list(strategies)
        self._last_chosen: Optional[Adversary] = None

    def bind_network(self, network) -> None:
        for strategy in self.strategies:
            strategy.bind_network(network)

    def observe_phase(self, context: PhaseContext) -> None:
        # Every sub-strategy sees every phase — a mobile jammer keeps moving
        # (and re-resolving victims) even while another strategy's plan wins.
        for strategy in self.strategies:
            strategy.observe_phase(context)

    def _plan(self, context: PhaseContext, allowance: float) -> JamPlan:
        for strategy in self.strategies:
            plan = strategy.plan_phase(
                _with_allowance(context, min(allowance, strategy.remaining_allowance(context)))
            )
            if plan.attacks_anything:
                self._last_chosen = strategy
                return plan
        self._last_chosen = None
        return JamPlan.idle()

    def observe_result(self, context: PhaseContext, result: PhaseResult) -> None:
        super().observe_result(context, result)
        if self._last_chosen is not None:
            self._last_chosen.observe_result(context, result)

    # -- parameter introspection: route prefixed names to sub-strategies -- #

    def tunable_parameters(self) -> Dict[str, ParamSpec]:
        specs: Dict[str, ParamSpec] = {}
        for index, strategy in enumerate(self.strategies):
            specs.update(_prefixed_specs(f"s{index}", strategy))
        return specs

    def get_parameter(self, name: str) -> float:
        strategy, inner = self._route(name)
        return strategy.get_parameter(inner)

    def _set_parameter(self, name: str, value: float) -> None:
        strategy, inner = self._route(name)
        strategy._set_parameter(inner, value)

    def _validate_parameters(self) -> None:
        for strategy in self.strategies:
            strategy._validate_parameters()

    def _route(self, name: str) -> Tuple[Adversary, str]:
        prefix, _, inner = name.partition(".")
        if inner and prefix.startswith("s") and prefix[1:].isdigit():
            index = int(prefix[1:])
            if 0 <= index < len(self.strategies):
                return self.strategies[index], inner
        raise ConfigurationError(
            f"CompositeAdversary has no tunable parameter {name!r} "
            f"(known: {', '.join(sorted(self.tunable_parameters())) or 'none'})"
        )


class RoundSwitchingAdversary(Adversary):
    """Use one strategy before ``switch_round`` and another from then on."""

    name = "round_switching"

    tunable = (
        ParamSpec("switch_round", 0, 64, integer=True,
                  description="round index at which the late strategy takes over"),
    )

    def __init__(
        self,
        early: Adversary,
        late: Adversary,
        switch_round: int,
        max_total_spend: Optional[float] = None,
    ) -> None:
        super().__init__(max_total_spend=max_total_spend)
        if switch_round < 0:
            raise ConfigurationError(f"switch_round must be non-negative, got {switch_round}")
        self.early = early
        self.late = late
        self.switch_round = switch_round

    def bind_network(self, network) -> None:
        self.early.bind_network(network)
        self.late.bind_network(network)

    def observe_phase(self, context: PhaseContext) -> None:
        # Both halves track time so the late strategy starts from the right
        # trajectory/victim state at the switch round.
        self.early.observe_phase(context)
        self.late.observe_phase(context)

    def _active(self, context: PhaseContext) -> Adversary:
        return self.early if context.plan.round_index < self.switch_round else self.late

    def _plan(self, context: PhaseContext, allowance: float) -> JamPlan:
        active = self._active(context)
        return active.plan_phase(
            _with_allowance(context, min(allowance, active.remaining_allowance(context)))
        )

    def observe_result(self, context: PhaseContext, result: PhaseResult) -> None:
        super().observe_result(context, result)
        self._active(context).observe_result(context, result)

    # -- parameter introspection: own knob plus early./late. prefixes ---- #

    def tunable_parameters(self) -> Dict[str, ParamSpec]:
        specs = {spec.name: spec for spec in type(self).tunable}
        specs.update(_prefixed_specs("early", self.early))
        specs.update(_prefixed_specs("late", self.late))
        return specs

    def get_parameter(self, name: str) -> float:
        if "." not in name:
            return super().get_parameter(name)
        strategy, inner = self._route(name)
        return strategy.get_parameter(inner)

    def _set_parameter(self, name: str, value: float) -> None:
        if "." not in name:
            super()._set_parameter(name, value)
            return
        strategy, inner = self._route(name)
        strategy._set_parameter(inner, value)

    def _validate_parameters(self) -> None:
        self.early._validate_parameters()
        self.late._validate_parameters()

    def _route(self, name: str) -> Tuple[Adversary, str]:
        prefix, _, inner = name.partition(".")
        if inner and prefix in ("early", "late"):
            return (self.early if prefix == "early" else self.late), inner
        raise ConfigurationError(
            f"RoundSwitchingAdversary has no tunable parameter {name!r} "
            f"(known: {', '.join(sorted(self.tunable_parameters())) or 'none'})"
        )


def _with_allowance(context: PhaseContext, allowance: float) -> PhaseContext:
    """Return a copy of ``context`` with the remaining budget replaced."""

    return PhaseContext(
        plan=context.plan,
        roles=context.roles,
        config=context.config,
        history=context.history,
        adversary_remaining_budget=allowance,
    )
