"""Combining adversary strategies.

Real attacks mix tactics: block the inform phases while budget is plentiful,
then switch to cheap request-phase spoofing to squeeze out extra delay.
:class:`CompositeAdversary` dispatches each phase to the first sub-strategy
that produces a non-idle plan, and :class:`RoundSwitchingAdversary` switches
strategy at a given round boundary.  Both keep a single shared spend cap so
experiment budgets remain meaningful.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..simulation.errors import ConfigurationError
from ..simulation.phaseplan import JamPlan, PhaseContext, PhaseResult
from .base import Adversary

__all__ = ["CompositeAdversary", "RoundSwitchingAdversary"]


class CompositeAdversary(Adversary):
    """Try sub-strategies in priority order; use the first non-idle plan."""

    name = "composite"

    def __init__(
        self,
        strategies: Sequence[Adversary],
        max_total_spend: Optional[float] = None,
    ) -> None:
        super().__init__(max_total_spend=max_total_spend)
        if not strategies:
            raise ConfigurationError("CompositeAdversary requires at least one sub-strategy")
        self.strategies = list(strategies)
        self._last_chosen: Optional[Adversary] = None

    def bind_network(self, network) -> None:
        for strategy in self.strategies:
            strategy.bind_network(network)

    def observe_phase(self, context: PhaseContext) -> None:
        # Every sub-strategy sees every phase — a mobile jammer keeps moving
        # (and re-resolving victims) even while another strategy's plan wins.
        for strategy in self.strategies:
            strategy.observe_phase(context)

    def _plan(self, context: PhaseContext, allowance: float) -> JamPlan:
        for strategy in self.strategies:
            plan = strategy.plan_phase(
                _with_allowance(context, min(allowance, strategy.remaining_allowance(context)))
            )
            if plan.attacks_anything:
                self._last_chosen = strategy
                return plan
        self._last_chosen = None
        return JamPlan.idle()

    def observe_result(self, context: PhaseContext, result: PhaseResult) -> None:
        super().observe_result(context, result)
        if self._last_chosen is not None:
            self._last_chosen.observe_result(context, result)


class RoundSwitchingAdversary(Adversary):
    """Use one strategy before ``switch_round`` and another from then on."""

    name = "round_switching"

    def __init__(
        self,
        early: Adversary,
        late: Adversary,
        switch_round: int,
        max_total_spend: Optional[float] = None,
    ) -> None:
        super().__init__(max_total_spend=max_total_spend)
        if switch_round < 0:
            raise ConfigurationError(f"switch_round must be non-negative, got {switch_round}")
        self.early = early
        self.late = late
        self.switch_round = switch_round

    def bind_network(self, network) -> None:
        self.early.bind_network(network)
        self.late.bind_network(network)

    def observe_phase(self, context: PhaseContext) -> None:
        # Both halves track time so the late strategy starts from the right
        # trajectory/victim state at the switch round.
        self.early.observe_phase(context)
        self.late.observe_phase(context)

    def _active(self, context: PhaseContext) -> Adversary:
        return self.early if context.plan.round_index < self.switch_round else self.late

    def _plan(self, context: PhaseContext, allowance: float) -> JamPlan:
        active = self._active(context)
        return active.plan_phase(
            _with_allowance(context, min(allowance, active.remaining_allowance(context)))
        )

    def observe_result(self, context: PhaseContext, result: PhaseResult) -> None:
        super().observe_result(context, result)
        self._active(context).observe_result(context, result)


def _with_allowance(context: PhaseContext, allowance: float) -> PhaseContext:
    """Return a copy of ``context`` with the remaining budget replaced."""

    return PhaseContext(
        plan=context.plan,
        roles=context.roles,
        config=context.config,
        history=context.history,
        adversary_remaining_budget=allowance,
    )
