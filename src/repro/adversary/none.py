"""The null adversary: Carol stays home.

Used as the baseline scenario (Lemma 9: with no blocked phases, Alice pays
``O(log^{3a+1} n)`` and each node ``O(log^{(3/2)b} n)``) and as a sanity check
for every protocol implementation.
"""

from __future__ import annotations

from ..simulation.phaseplan import JamPlan, PhaseContext
from .base import Adversary

__all__ = ["NullAdversary"]


class NullAdversary(Adversary):
    """An adversary that never jams, spoofs, or spends anything."""

    name = "none"

    def _plan(self, context: PhaseContext, allowance: float) -> JamPlan:
        return JamPlan.idle()
