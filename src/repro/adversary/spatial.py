"""Spatial (disk) jamming.

Over a spatial :class:`~repro.simulation.topology.Topology` Carol does not
have to blast the whole deployment: a physical jammer has a position and a
range, so she can blanket a *disk* of the unit square and only listeners
inside it perceive noise.  :class:`SpatialJammer` models exactly that — it
resolves its disk against the run's topology into the listener set of a
:class:`~repro.simulation.channel.JamTargeting` and jams payload-carrying
phases for those victims only.

Spatial jamming is the geometric analogue of the paper's n-uniform targeting
(§2.3): the victim set is chosen by geography instead of by identity.  On a
single-hop topology a disk covers the whole clique, so the strategy degrades
gracefully into a plain phase blocker.

The adversary needs the realised topology (positions are sampled per seed),
which only exists once the :class:`~repro.simulation.network.Network` is
built; orchestrators therefore call :meth:`SpatialJammer.bind_network` before
the first phase.  Strategies without that hook are unaffected.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Tuple

from ..simulation.auth import ALICE_ID
from ..simulation.channel import JamTargeting
from ..simulation.errors import ConfigurationError
from ..simulation.phaseplan import JamPlan, PhaseContext, PhaseKind
from .base import Adversary
from .parameters import ParamSpec

__all__ = ["SpatialJammer", "plan_disk_jam"]


def plan_disk_jam(
    context: PhaseContext,
    victims: FrozenSet[int],
    jam_request_phases: bool = False,
) -> JamPlan:
    """The shared "jam payload slots for a victim set" planning rule.

    Used by :class:`SpatialJammer` and every mobile variant in
    :mod:`repro.adversary.mobility`: jam all slots of payload-carrying phases
    (optionally request phases too), targeted at ``victims``, and idle
    whenever no *active* victim would perceive the noise — jamming outside
    the victims' earshot is wasted energy.  Payload phases matter only to the
    disk's uninformed listeners; Alice (who listens in request phases alone)
    only when this is one.
    """

    if not victims:
        return JamPlan.idle()
    if context.plan.kind is PhaseKind.REQUEST and not jam_request_phases:
        return JamPlan.idle()
    if not context.plan.carries_payload and context.plan.kind is not PhaseKind.REQUEST:
        return JamPlan.idle()
    active_victims = victims & context.roles.active_uninformed
    if context.plan.kind is PhaseKind.REQUEST:
        active_victims |= victims & {ALICE_ID}
    if not active_victims:
        return JamPlan.idle()
    return JamPlan(
        num_jam_slots=context.plan.num_slots,
        targeting=JamTargeting.only(victims),
    )


class SpatialJammer(Adversary):
    """Jam every payload-carrying slot inside a disk of the deployment area.

    Parameters
    ----------
    center:
        Centre of the jammed disk in the unit square.
    radius:
        Radius of the jammed disk.
    max_total_spend:
        Optional cap on total expenditure (the experiment knob ``T``).
    jam_request_phases:
        Also jam request phases (delays termination inside the disk at extra
        cost).  Off by default, matching the splitter's economy of §2.3.
    """

    name = "spatial"

    tunable = (
        ParamSpec("radius", 0.02, 0.5,
                  description="jamming-disk radius in the unit square"),
    )

    def __init__(
        self,
        center: Tuple[float, float] = (0.5, 0.5),
        radius: float = 0.25,
        max_total_spend: Optional[float] = None,
        jam_request_phases: bool = False,
    ) -> None:
        super().__init__(max_total_spend=max_total_spend)
        if radius < 0:
            raise ConfigurationError(f"jam radius must be non-negative, got {radius}")
        self.center = (float(center[0]), float(center[1]))
        self.radius = float(radius)
        self.jam_request_phases = jam_request_phases
        self._victims: Optional[FrozenSet[int]] = None

    def _set_parameter(self, name: str, value: float) -> None:
        # The victim set is a function of the disk, so a resized clone must
        # re-resolve it at its next bind.
        super()._set_parameter(name, value)
        self._victims = None

    # ------------------------------------------------------------------ #
    # Topology binding                                                    #
    # ------------------------------------------------------------------ #

    def bind_network(self, network) -> None:
        """Resolve the jammed disk against the run's realised topology.

        Called by the orchestrator after the network (and hence the spatial
        layout) exists.  On aspatial topologies the disk resolves to every
        device.
        """

        self._victims = network.topology.nodes_in_disk(self.center, self.radius)

    @property
    def victims(self) -> FrozenSet[int]:
        """Device ids inside the jammed disk (empty before binding)."""

        return self._victims if self._victims is not None else frozenset()

    @property
    def coverage(self) -> FrozenSet[int]:
        """Every device id this jammer has ever targeted.

        For the static disk this equals :attr:`victims`; mobile strategies
        accumulate the union over phases.  Experiments use it to measure
        delivery restricted to the attacked population.
        """

        return self.victims

    # ------------------------------------------------------------------ #
    # Strategy                                                            #
    # ------------------------------------------------------------------ #

    def _plan(self, context: PhaseContext, allowance: float) -> JamPlan:
        if self._victims is None:
            raise ConfigurationError(
                "SpatialJammer used without bind_network(); the orchestrator must "
                "bind the adversary to the realised topology first"
            )
        return plan_disk_jam(context, self._victims, self.jam_request_phases)
