"""Random (oblivious) jamming.

Carol jams each slot independently with a fixed probability, in the spirit of
the random-fault model of Pelc & Peleg cited in the paper's related work.  A
random jammer wastes much of its energy on slots nobody was using, which is
exactly why the paper's adversary model is strictly stronger.
"""

from __future__ import annotations

from typing import Optional

from ..simulation.channel import JamTargeting
from ..simulation.errors import ConfigurationError
from ..simulation.phaseplan import JamPlan, PhaseContext
from .base import Adversary
from .parameters import ParamSpec

__all__ = ["RandomJammer"]


class RandomJammer(Adversary):
    """Jam each slot independently with probability ``rate``.

    Parameters
    ----------
    rate:
        Per-slot jamming probability in ``[0, 1]``.
    max_total_spend:
        Optional cap on total expenditure.
    targeting:
        Victim selection per jammed slot; defaults to everyone.
    """

    name = "random"

    tunable = (
        ParamSpec("rate", 0.0, 1.0,
                  description="per-slot jamming probability"),
    )

    def __init__(
        self,
        rate: float,
        max_total_spend: Optional[float] = None,
        targeting: Optional[JamTargeting] = None,
    ) -> None:
        super().__init__(max_total_spend=max_total_spend)
        if not (0.0 <= rate <= 1.0):
            raise ConfigurationError(f"jam rate must lie in [0, 1], got {rate}")
        self.rate = rate
        self.targeting = targeting if targeting is not None else JamTargeting.everyone()

    def _plan(self, context: PhaseContext, allowance: float) -> JamPlan:
        # Express the rate as an expected slot count so the base-class cap can
        # bound the worst case; the engine realises it as per-slot coin flips
        # via ``num_jam_slots`` drawn uniformly, which matches the rate in
        # expectation and keeps the spend bounded by the allowance.
        expected = int(round(self.rate * context.plan.num_slots))
        return JamPlan(num_jam_slots=expected, targeting=self.targeting)
