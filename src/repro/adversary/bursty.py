"""Bursty jamming.

A (burst-length, duty-cycle) jammer in the spirit of the adversaries studied
by Awerbuch et al. (PODC 2008) and Richa et al. (DISC 2010): Carol alternates
between jamming bursts and quiet periods.  Burst boundaries are placed
deterministically within each phase, which makes the strategy easy to reason
about in tests while still exercising the explicit-slot-schedule path of the
engines.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..simulation.channel import JamTargeting
from ..simulation.errors import ConfigurationError
from ..simulation.phaseplan import JamPlan, PhaseContext
from .base import Adversary
from .parameters import ParamSpec

__all__ = ["BurstyJammer"]


class BurstyJammer(Adversary):
    """Jam in periodic bursts.

    Parameters
    ----------
    burst_length:
        Number of consecutive slots jammed in each burst.
    period:
        Distance (in slots) between the starts of consecutive bursts; must be
        at least ``burst_length``.
    offset:
        Slot offset of the first burst within each phase.
    max_total_spend:
        Optional cap on total expenditure.
    """

    name = "bursty"

    tunable = (
        ParamSpec("burst_length", 1, 128, integer=True,
                  description="slots jammed at the top of each period"),
        ParamSpec("period", 1, 256, integer=True,
                  description="slots between burst starts (the duty-cycle denominator)"),
    )

    def __init__(
        self,
        burst_length: int,
        period: int,
        offset: int = 0,
        max_total_spend: Optional[float] = None,
        targeting: Optional[JamTargeting] = None,
    ) -> None:
        super().__init__(max_total_spend=max_total_spend)
        if burst_length <= 0:
            raise ConfigurationError(f"burst_length must be positive, got {burst_length}")
        if period < burst_length:
            raise ConfigurationError(
                f"period ({period}) must be at least burst_length ({burst_length})"
            )
        if offset < 0:
            raise ConfigurationError(f"offset must be non-negative, got {offset}")
        self.burst_length = burst_length
        self.period = period
        self.offset = offset
        self.targeting = targeting if targeting is not None else JamTargeting.everyone()

    def _validate_parameters(self) -> None:
        # The constructor's cross-field constraint, re-checked after a
        # with_parameters batch (each knob is in-bounds on its own, but a
        # long burst can outgrow a short period).
        if self.period < self.burst_length:
            raise ConfigurationError(
                f"period ({self.period}) must be at least burst_length ({self.burst_length})"
            )

    def burst_slots(self, num_slots: int) -> Tuple[int, ...]:
        """The explicit slot offsets jammed within a phase of ``num_slots``."""

        slots = []
        start = self.offset
        while start < num_slots:
            for slot in range(start, min(start + self.burst_length, num_slots)):
                slots.append(slot)
            start += self.period
        return tuple(slots)

    def _plan(self, context: PhaseContext, allowance: float) -> JamPlan:
        return JamPlan(
            slot_indices=self.burst_slots(context.plan.num_slots),
            targeting=self.targeting,
        )
