"""Request-phase spoofing / termination-delay attack.

§2.2 of the paper analyses the attack where Carol keeps Alice (and the
informed nodes) executing the protocol past the point where everyone has the
message: correct nodes cannot be authenticated, so Carol can inject nack
messages — or simply jam — during the request phase, making the channel look
busy and tricking the listeners into believing many uninformed nodes remain.

Lemmas 4–7 show the attack is expensive: to delay termination in round ``i``
Carol must make ``Ω(2^{(b/2+1)i})`` slots noisy, so her spend grows
geometrically per extra round of delay while Alice's extra cost grows only as
``Õ(T^{a/(b/2+1)})``.  :class:`RequestSpoofingAdversary` mounts exactly this
attack so the experiments can verify the claimed cost asymmetry.
"""

from __future__ import annotations

from typing import Optional

from ..simulation.channel import JamTargeting
from ..simulation.errors import ConfigurationError
from ..simulation.phaseplan import JamPlan, PhaseContext, PhaseKind
from .base import Adversary
from .parameters import ParamSpec

__all__ = ["RequestSpoofingAdversary"]


class RequestSpoofingAdversary(Adversary):
    """Keep the request phase noisy to delay termination.

    Parameters
    ----------
    fraction:
        Fraction of each request phase's slots to make noisy, in ``(0, 1]``.
        The termination rules compare against a constant-fraction threshold,
        so anything above roughly ``(1 - e^{-4ε'})`` works; default is 1.0
        (make every slot noisy).
    use_spoofed_nacks:
        When ``True`` the noise is injected as spoofed nack transmissions
        (indistinguishable from legitimate nacks); when ``False`` plain
        jamming is used.  Both cost one unit per slot and both defeat the
        "silence means done" check, which is the point of the lemmas.
    max_total_spend:
        Optional cap on total expenditure.
    also_block_payload_phases:
        When ``True`` the strategy additionally blocks inform/propagation
        phases (the combined strategy of Lemma 10's second case, where
        ``r' > r``).
    """

    name = "request_spoofer"

    tunable = (
        ParamSpec("fraction", 0.05, 1.0,
                  description="fraction of request slots attacked"),
    )

    def __init__(
        self,
        fraction: float = 1.0,
        use_spoofed_nacks: bool = True,
        max_total_spend: Optional[float] = None,
        also_block_payload_phases: bool = False,
    ) -> None:
        super().__init__(max_total_spend=max_total_spend)
        if not (0.0 < fraction <= 1.0):
            raise ConfigurationError(f"fraction must lie in (0, 1], got {fraction}")
        self.fraction = fraction
        self.use_spoofed_nacks = use_spoofed_nacks
        self.also_block_payload_phases = also_block_payload_phases

    def _plan(self, context: PhaseContext, allowance: float) -> JamPlan:
        plan = context.plan
        if plan.kind is PhaseKind.REQUEST:
            slots = int(round(self.fraction * plan.num_slots))
            if slots <= 0:
                return JamPlan.idle()
            if self.use_spoofed_nacks:
                return JamPlan(spoof_nack_slots=slots, targeting=JamTargeting.none())
            return JamPlan(num_jam_slots=slots, targeting=JamTargeting.everyone())
        if self.also_block_payload_phases and plan.kind in (PhaseKind.INFORM, PhaseKind.PROPAGATION):
            return JamPlan(num_jam_slots=plan.num_slots, targeting=JamTargeting.everyone())
        return JamPlan.idle()
