"""n-uniform "split the network" adversary.

Carol's n-uniform power lets her decide *which* listeners perceive jamming in
a jammed slot.  §2.3 explains how she exploits this: by blocking the payload
phases for a chosen set of victims while letting everyone else receive ``m``,
she steers the protocol into a state where only a small group remains
uninformed — few enough that the request phase looks quiet and everyone,
including Alice, terminates.  The uninformed leftovers are exactly the
``ε``-fraction the protocol is allowed to sacrifice, and the experiments use
this strategy to measure how large Carol can make that leftover and what it
costs her.

:class:`NUniformSplitAdversary` picks a fixed victim set of size
``target_uninformed`` at the start of the run and jams every slot of every
payload-carrying phase *for those victims only*, until they have all either
terminated or (if her budget dies first) received the message.
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from ..simulation.channel import JamTargeting
from ..simulation.errors import ConfigurationError
from ..simulation.phaseplan import JamPlan, PhaseContext, PhaseKind
from .base import Adversary
from .parameters import ParamSpec

__all__ = ["NUniformSplitAdversary"]


class NUniformSplitAdversary(Adversary):
    """Steer the protocol into terminating with a chosen number of uninformed nodes.

    Parameters
    ----------
    target_uninformed:
        How many correct nodes Carol tries to leave uninformed at
        termination.  Values at or below the protocol's quiet-termination
        threshold make the attack succeed; the experiments verify that the
        leftover can never exceed ``ε·n`` without exhausting her budget.
    max_total_spend:
        Optional cap on total expenditure.
    start_round:
        First round in which to mount the attack.
    """

    name = "nuniform_split"

    tunable = (
        ParamSpec("target_uninformed", 0, 4096, integer=True,
                  description="how many nodes the split tries to keep uninformed"),
        ParamSpec("start_round", 0, 32, integer=True,
                  description="first round the split attack engages"),
    )

    def __init__(
        self,
        target_uninformed: int,
        max_total_spend: Optional[float] = None,
        start_round: int = 0,
    ) -> None:
        super().__init__(max_total_spend=max_total_spend)
        if target_uninformed < 0:
            raise ConfigurationError(
                f"target_uninformed must be non-negative, got {target_uninformed}"
            )
        self.target_uninformed = target_uninformed
        self.start_round = start_round
        self._victims: Optional[FrozenSet[int]] = None

    @property
    def victims(self) -> FrozenSet[int]:
        """The fixed victim set (empty until the first payload phase is seen)."""

        return self._victims if self._victims is not None else frozenset()

    def _choose_victims(self, context: PhaseContext) -> FrozenSet[int]:
        if self._victims is None:
            uninformed = sorted(context.roles.active_uninformed)
            self._victims = frozenset(uninformed[: self.target_uninformed])
        return self._victims

    def _plan(self, context: PhaseContext, allowance: float) -> JamPlan:
        plan = context.plan
        if plan.round_index < self.start_round or self.target_uninformed == 0:
            return JamPlan.idle()
        if plan.kind is PhaseKind.REQUEST:
            # Let the request phase run clean so the termination conditions
            # fire while the victims are still uninformed.
            return JamPlan.idle()
        victims = self._choose_victims(context)
        remaining_victims = victims & context.roles.active_uninformed
        if not remaining_victims:
            # Every victim has terminated (or slipped through); nothing left
            # to gain from further jamming.
            return JamPlan.idle()
        return JamPlan(
            num_jam_slots=plan.num_slots,
            targeting=JamTargeting.only(remaining_victims),
        )
