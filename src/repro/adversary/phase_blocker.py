"""Phase-blocking adversary.

This is the strategy the paper's cost analysis (Lemma 10) treats as Carol's
reference attack: she targets whole phases and fills them with noise, forcing
the protocol into ever longer rounds.  Because rounds grow geometrically,
every additional round she blocks costs her geometrically more, which is the
mechanism behind the ``T^{1/(k+1)}`` resource-competitive bound.

The strategy exposes two practical knobs used heavily by the experiments:

* which phase kinds to block (the inform phase is the cheapest effective
  target: with no informed relays the whole round is sterile), and
* the fraction of each targeted phase to jam.  The paper's *analysis* calls a
  phase blocked when more than half its slots are jammed; to actually prevent
  delivery a non-reactive Carol must jam essentially every slot, so the
  default fraction is 1.0.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from ..simulation.channel import JamTargeting
from ..simulation.errors import ConfigurationError
from ..simulation.phaseplan import JamPlan, PhaseContext, PhaseKind
from .base import Adversary
from .parameters import ParamSpec

__all__ = ["PhaseBlockingAdversary"]


class PhaseBlockingAdversary(Adversary):
    """Jam a fixed fraction of every phase of the targeted kinds.

    Parameters
    ----------
    kinds:
        Which :class:`~repro.simulation.phaseplan.PhaseKind` values to attack.
        Defaults to the inform phase only (the cheapest way to sterilise a
        round).
    fraction:
        Fraction of each targeted phase's slots to jam, in ``(0, 1]``.
    max_total_spend:
        Optional cap on total expenditure (the experiment knob ``T``).
    targeting:
        Per-slot victim selection; defaults to everyone.
    skip_rounds_below:
        Do not bother attacking rounds with index lower than this (attacking
        tiny early rounds wastes energy without delaying anything measurable).
    """

    name = "phase_blocker"

    tunable = (
        ParamSpec("fraction", 0.05, 1.0,
                  description="fraction of each targeted phase's slots jammed"),
        ParamSpec("skip_rounds_below", 0, 32, integer=True,
                  description="rounds left untouched before the blocking starts"),
    )

    def __init__(
        self,
        kinds: Optional[Iterable[PhaseKind]] = None,
        fraction: float = 1.0,
        max_total_spend: Optional[float] = None,
        targeting: Optional[JamTargeting] = None,
        skip_rounds_below: int = 0,
    ) -> None:
        super().__init__(max_total_spend=max_total_spend)
        if not (0.0 < fraction <= 1.0):
            raise ConfigurationError(f"fraction must lie in (0, 1], got {fraction}")
        self.kinds: Set[PhaseKind] = set(kinds) if kinds is not None else {PhaseKind.INFORM}
        if not self.kinds:
            raise ConfigurationError("at least one phase kind must be targeted")
        self.fraction = fraction
        self.targeting = targeting if targeting is not None else JamTargeting.everyone()
        self.skip_rounds_below = skip_rounds_below

    def _plan(self, context: PhaseContext, allowance: float) -> JamPlan:
        plan = context.plan
        if plan.kind not in self.kinds:
            return JamPlan.idle()
        if plan.round_index < self.skip_rounds_below:
            return JamPlan.idle()
        num_jam = int(round(self.fraction * plan.num_slots))
        if num_jam <= 0:
            return JamPlan.idle()
        return JamPlan(num_jam_slots=num_jam, targeting=self.targeting)
