"""Adversary strategy base class.

Every concrete adversary ("Carol") derives from :class:`Adversary`.  The
orchestrator shows the strategy a
:class:`~repro.simulation.phaseplan.PhaseContext` before each phase — the full
history plus everything an adaptive adversary is allowed to know — and the
strategy answers with a :class:`~repro.simulation.phaseplan.JamPlan`.  After
the phase executes, the strategy is shown the
:class:`~repro.simulation.phaseplan.PhaseResult` so adaptive strategies can
update their internal state.

Budget enforcement is *not* the strategy's job: the engines cap every plan by
Carol's aggregate ledger.  Strategies may nevertheless budget themselves (for
example to realise "spend exactly T" experiment scenarios) via the
``max_total_spend`` knob handled here in the base class.
"""

from __future__ import annotations

import abc
import copy
import math
from typing import ClassVar, Dict, List, Optional, Tuple

from ..simulation.errors import ConfigurationError
from ..simulation.phaseplan import JamPlan, PhaseContext, PhaseResult
from .parameters import ParamSpec

__all__ = ["Adversary"]


class Adversary(abc.ABC):
    """Base class for all jamming / spoofing strategies.

    Parameters
    ----------
    max_total_spend:
        Optional self-imposed cap on Carol's total expenditure.  Useful for
        experiments that sweep the adversary's spend ``T`` independently of
        her full budget.  ``None`` means "spend up to the ledger budget".
    """

    name: str = "adversary"

    #: Tunable parameters for introspection and search.  Each spec names a
    #: plain attribute on the instance (subclasses with derived state hook
    #: :meth:`_set_parameter` / :meth:`_validate_parameters` instead of
    #: redefining the surface).  An empty tuple is a legitimate declaration
    #: — e.g. ``NullAdversary`` has nothing to tune — and still satisfies
    #: the tournament's conformance contract.
    tunable: ClassVar[Tuple[ParamSpec, ...]] = ()

    def __init__(self, max_total_spend: Optional[float] = None) -> None:
        if max_total_spend is not None and max_total_spend < 0:
            raise ValueError(f"max_total_spend must be non-negative, got {max_total_spend}")
        self.max_total_spend = max_total_spend
        self._spent = 0.0
        self._results: List[PhaseResult] = []

    # ------------------------------------------------------------------ #
    # Template method                                                     #
    # ------------------------------------------------------------------ #

    def bind_network(self, network) -> None:
        """Attach the strategy to the realised network before the first phase.

        Called once by the orchestrator after the
        :class:`~repro.simulation.network.Network` (and hence the realised
        topology) exists.  The default is a no-op; strategies whose plans
        depend on the realised topology — e.g.
        :class:`~repro.adversary.spatial.SpatialJammer` resolving its disk
        into a victim set — override it.
        """

    def observe_phase(self, context: PhaseContext) -> None:
        """See the upcoming phase before committing a plan.

        Called exactly once per phase by every orchestrator, *before*
        :meth:`plan_phase`.  This is the re-resolution hook for strategies
        whose victim set is a function of time: mobile disk jammers advance
        their trajectory and re-resolve victims here, and adaptive strategies
        may inspect the context's roles.  Unlike :meth:`plan_phase` — which
        combining strategies only forward to the sub-strategy they select —
        the hook is forwarded to *every* nested strategy every phase, so an
        unselected jammer keeps moving while it idles.  The default is a
        no-op.
        """

    def plan_phase(self, context: PhaseContext) -> JamPlan:
        """Return the attack plan for the upcoming phase.

        Applies the self-imposed spend cap around the concrete strategy's
        :meth:`_plan`.
        """

        allowance = self.remaining_allowance(context)
        if allowance <= 0:
            return JamPlan.idle()
        plan = self._plan(context, allowance)
        return self._cap_plan(plan, allowance)

    def observe_result(self, context: PhaseContext, result: PhaseResult) -> None:
        """Record the phase outcome; adaptive subclasses may override."""

        self._spent += result.adversary_spend
        self._results.append(result)

    # ------------------------------------------------------------------ #
    # Parameter introspection                                             #
    # ------------------------------------------------------------------ #

    def tunable_parameters(self) -> Dict[str, ParamSpec]:
        """The strategy's tunable parameters, keyed by name.

        The default reads the class-level :attr:`tunable` declaration;
        combining strategies (``CompositeAdversary``) override this to
        expose their sub-strategies' knobs under prefixed names.
        """

        return {spec.name: spec for spec in type(self).tunable}

    def get_parameter(self, name: str) -> float:
        """Current value of tunable parameter ``name``."""

        spec = self._require_spec(name)
        return getattr(self, spec.name)

    def with_parameters(self, **values: float) -> "Adversary":
        """A deep copy of this (unbound) strategy with parameters replaced.

        Values are validated against each parameter's declared bounds
        before anything is mutated, so a failed call leaves no half-updated
        clone behind.  Must be applied *before* :meth:`bind_network` — the
        tournament's roster factories build a fresh strategy per trial, so
        this is the natural order there.
        """

        if not values:
            return self
        specs = self.tunable_parameters()
        validated = {}
        for name, value in values.items():
            if name not in specs:
                known = ", ".join(sorted(specs)) or "none"
                raise ConfigurationError(
                    f"{type(self).__name__} has no tunable parameter {name!r} (known: {known})"
                )
            validated[name] = specs[name].validate(value)
        clone = copy.deepcopy(self)
        for name, value in validated.items():
            clone._set_parameter(name, value)
        clone._validate_parameters()
        return clone

    def _set_parameter(self, name: str, value: float) -> None:
        """Assign one validated parameter; subclasses with derived state override."""

        setattr(self, name, value)

    def _validate_parameters(self) -> None:
        """Cross-field checks after a :meth:`with_parameters` batch (no-op)."""

    def _require_spec(self, name: str) -> ParamSpec:
        specs = self.tunable_parameters()
        if name not in specs:
            known = ", ".join(sorted(specs)) or "none"
            raise ConfigurationError(
                f"{type(self).__name__} has no tunable parameter {name!r} (known: {known})"
            )
        return specs[name]

    # ------------------------------------------------------------------ #
    # Hooks for subclasses                                                #
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def _plan(self, context: PhaseContext, allowance: float) -> JamPlan:
        """Concrete strategy: decide the attack given a spend allowance."""

    # ------------------------------------------------------------------ #
    # Shared helpers                                                      #
    # ------------------------------------------------------------------ #

    @property
    def spent(self) -> float:
        """Total energy this strategy has spent so far."""

        return self._spent

    @property
    def results(self) -> Tuple[PhaseResult, ...]:
        """All observed phase results, in execution order."""

        return tuple(self._results)

    def remaining_allowance(self, context: PhaseContext) -> float:
        """How much the strategy may still spend, combining cap and ledger."""

        ledger_remaining = context.adversary_remaining_budget
        if self.max_total_spend is None:
            return ledger_remaining
        return min(ledger_remaining, self.max_total_spend - self._spent)

    @staticmethod
    def _cap_plan(plan: JamPlan, allowance: float) -> JamPlan:
        """Clip a plan so its worst-case spend does not exceed ``allowance``."""

        if allowance <= 0:
            return JamPlan.idle()
        budget = int(math.floor(allowance))

        num_jam = min(plan.num_jam_slots, budget)
        slot_indices = plan.slot_indices
        if slot_indices is not None and len(slot_indices) > budget:
            slot_indices = tuple(slot_indices[:budget])
            jam_committed = len(slot_indices)
        elif slot_indices is not None:
            jam_committed = len(slot_indices)
        else:
            jam_committed = num_jam

        remaining_for_spoofs = max(budget - jam_committed, 0)
        spoof_payload = min(plan.spoof_payload_slots, remaining_for_spoofs)
        remaining_for_spoofs -= spoof_payload
        spoof_nack = min(plan.spoof_nack_slots, remaining_for_spoofs)

        # Rate-based plans cannot be capped exactly in advance; they are
        # bounded by the ledger inside the engines.  We pass them through.
        return JamPlan(
            num_jam_slots=num_jam,
            jam_rate=plan.jam_rate,
            slot_indices=slot_indices,
            targeting=plan.targeting,
            reactive=plan.reactive,
            spoof_nack_slots=spoof_nack,
            spoof_payload_slots=spoof_payload,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(spent={self._spent:g}, cap={self.max_total_spend})"
