"""The naive always-retransmit baseline.

This is the strawman the paper's introduction dismisses: "a correct node
continually sends m until the jamming stops; this yields very poor resource
competitiveness since each node spends at least as much as the adversary."
Here the sender keeps the channel saturated and every uninformed receiver
keeps its radio on, so both sides pay one unit per slot for as long as Carol
keeps jamming — per-device cost ``Θ(T)``, resource-competitive ratio ``Θ(1)``.
"""

from __future__ import annotations

from .base import EpochBaseline

__all__ = ["NaiveBroadcast"]


class NaiveBroadcast(EpochBaseline):
    """Alice transmits every slot; uninformed nodes listen every slot."""

    protocol_name = "naive"

    def epoch_length(self, epoch: int) -> int:
        # Epochs double so that a run facing a budget-limited jammer ends
        # within O(log) epochs of the jamming stopping.
        return 2 ** epoch

    def alice_send_probability(self, epoch: int) -> float:
        return 1.0

    def node_listen_probability(self, epoch: int) -> float:
        return 1.0
