"""Shared machinery for baseline broadcast protocols.

The baselines exist so the experiments can reproduce the paper's *positioning*
claims: the naive always-retransmit strategy pays ``Θ(T)`` per device, the
King–Saia–Young line of work pays ``O(T^{0.62})`` at the sender but ``Θ(T)``
at each receiver, and a simple balanced epoch-backoff achieves ``O(T^{1/2})``
on both sides — all strictly worse than ε-Broadcast's ``Õ(T^{1/(k+1)})``.

Every baseline is an *epoch* protocol: epoch ``i`` is a single
:class:`~repro.simulation.phaseplan.PhasePlan` of geometrically growing length
in which Alice transmits and uninformed nodes listen with epoch-specific
probabilities.  Baselines are deliberately given two advantages ε-Broadcast
does not enjoy — an oracle that stops the run once every node is informed
(they have no termination mechanism of their own) and freedom from the
request-phase overhead — so the cost comparison against them is conservative.
"""

from __future__ import annotations

import abc
import math
from typing import Optional

from ..adversary.base import Adversary
from ..adversary.none import NullAdversary
from ..simulation.clock import SlotClock
from ..simulation.config import SimulationConfig
from ..simulation.engine import SlotEngine
from ..simulation.errors import ConfigurationError
from ..simulation.events import EventLog, PhaseRecord
from ..simulation.fastengine import PhaseEngine
from ..simulation.metrics import CostBreakdown, DeliveryStats
from ..simulation.network import Network
from ..simulation.phaseplan import PhaseContext, PhaseKind, PhasePlan, PhaseRoles
from ..core.outcome import BroadcastOutcome
from ..core.state import ProtocolState

__all__ = ["EpochBaseline"]


class EpochBaseline(abc.ABC):
    """Base class for epoch-structured baseline broadcast protocols.

    Parameters
    ----------
    config:
        Model parameters shared with ε-Broadcast runs.
    adversary:
        Carol's strategy; defaults to no attack.
    engine:
        ``"fast"`` (default), ``"slot"``, or an engine instance.
    max_epoch:
        Last epoch index before the run is abandoned; defaults to two epochs
        past the point where a single epoch outlasts Carol's entire aggregate
        budget, so a baseline always finishes once the jamming stops.
    """

    protocol_name = "epoch-baseline"

    def __init__(
        self,
        config: SimulationConfig,
        adversary: Optional[Adversary] = None,
        engine: str | SlotEngine | PhaseEngine = "fast",
        network: Optional[Network] = None,
        max_epoch: Optional[int] = None,
    ) -> None:
        self.config = config
        self.adversary = adversary if adversary is not None else NullAdversary()
        self.network = network if network is not None else Network(config)
        # Topology-dependent strategies (e.g. spatial disk jammers) resolve
        # their victim sets against the realised network; no-op by default.
        self.adversary.bind_network(self.network)
        self.engine = self._resolve_engine(engine)
        if max_epoch is not None:
            self.max_epoch = max_epoch
        else:
            horizon = max(config.adversary_total_budget, float(config.n))
            self.max_epoch = int(math.ceil(math.log2(horizon))) + 2

    def _resolve_engine(self, engine):
        if isinstance(engine, (SlotEngine, PhaseEngine)):
            return engine
        if engine == "fast":
            return PhaseEngine(self.network)
        if engine == "slot":
            return SlotEngine(self.network)
        raise ConfigurationError(f"unknown engine specification {engine!r}")

    # ------------------------------------------------------------------ #
    # Per-epoch behaviour supplied by subclasses                          #
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def epoch_length(self, epoch: int) -> int:
        """Number of slots in epoch ``i``."""

    @abc.abstractmethod
    def alice_send_probability(self, epoch: int) -> float:
        """Alice's per-slot sending probability during epoch ``i``."""

    @abc.abstractmethod
    def node_listen_probability(self, epoch: int) -> float:
        """An uninformed node's per-slot listening probability during epoch ``i``."""

    # ------------------------------------------------------------------ #
    # Execution                                                           #
    # ------------------------------------------------------------------ #

    def epoch_plan(self, epoch: int) -> PhasePlan:
        """The phase plan realising epoch ``i``."""

        return PhasePlan(
            name=f"epoch:{epoch}",
            kind=PhaseKind.INFORM,
            round_index=epoch,
            num_slots=self.epoch_length(epoch),
            alice_send_prob=self.alice_send_probability(epoch),
            uninformed_listen_prob=self.node_listen_probability(epoch),
        )

    def run(self) -> BroadcastOutcome:
        """Execute the baseline until every node is informed (or the cap)."""

        state = ProtocolState(self.config.n)
        clock = SlotClock()
        log = EventLog()
        terminated_by_cap = True

        for epoch in range(1, self.max_epoch + 1):
            plan = self.epoch_plan(epoch)
            roles = PhaseRoles(
                active_uninformed=state.active_uninformed(),
                alice_active=True,
            )
            context = PhaseContext(
                plan=plan,
                roles=roles,
                config=self.config,
                history=log.phases,
                adversary_remaining_budget=self.network.adversary_ledger.remaining,
            )
            # Same per-phase re-resolution hook as the ε-Broadcast family:
            # mobile strategies track time against baselines too.
            self.adversary.observe_phase(context)
            jam_plan = self.adversary.plan_phase(context)

            alice_before = self.network.alice_cost
            nodes_before = float(self.network.node_costs().sum())
            clock.begin_phase(epoch, plan.name)
            result = self.engine.run_phase(plan, roles, jam_plan, start_slot=clock.now)
            clock.advance(plan.num_slots)
            clock.end_phase()

            if result.newly_informed:
                state.mark_informed(result.newly_informed, slot=clock.now)
                # Baseline receivers stop as soon as they hold the message.
                state.terminate_informed(result.newly_informed, epoch)

            self.adversary.observe_result(context, result)
            log.record_phase(
                PhaseRecord(
                    round_index=epoch,
                    phase_name=plan.name,
                    num_slots=plan.num_slots,
                    start_slot=clock.now - plan.num_slots,
                    jammed_slots=result.jammed_slots,
                    adversary_spend=result.adversary_spend,
                    newly_informed=len(result.newly_informed),
                    alice_cost=self.network.alice_cost - alice_before,
                    nodes_cost=float(self.network.node_costs().sum()) - nodes_before,
                    active_uninformed_after=len(state.active_uninformed()),
                    terminated_after=state.terminated_informed_count()
                    + state.terminated_uninformed_count(),
                )
            )

            if not state.active_uninformed():
                terminated_by_cap = False
                break

        # The oracle stops Alice the moment the last node is informed.
        state.terminate_alice(min(self.max_epoch, log.phases[-1].round_index if log.phases else 0))
        state.terminate_uninformed(state.active_uninformed(), self.max_epoch)
        self.final_state = state

        delivery = DeliveryStats(
            n=self.config.n,
            informed=state.terminated_informed_count(),
            terminated_informed=state.terminated_informed_count(),
            terminated_uninformed=state.terminated_uninformed_count(),
            slots_elapsed=clock.now,
            rounds_executed=log.rounds_executed(),
            alice_terminated=True,
        )
        costs = CostBreakdown.from_snapshot(
            self.network.cost_snapshot(), per_node=self.network.node_costs()
        )
        return BroadcastOutcome(
            protocol=self.protocol_name,
            adversary=getattr(self.adversary, "name", type(self.adversary).__name__),
            config=self.config,
            delivery=delivery,
            costs=costs,
            events=log,
            terminated_by_cap=terminated_by_cap,
        )
