"""A balanced epoch-backoff strawman.

Between the naive ``Θ(T)`` strategy and ε-Broadcast's ``Õ(T^{1/(k+1)})`` sits
an obvious intermediate design: both sides back off geometrically, with Alice
sending and every uninformed node listening in a ``2^{-i/2}`` fraction of the
``2^i`` slots of epoch ``i``.  Per-epoch costs are ``≈ 2^{i/2}`` for everyone
(load balanced!), and a node catches an unjammed transmission in an epoch with
constant probability, so the protocol ends a logarithmic number of epochs
after Carol's budget dies — per-device cost ``O(T^{1/2})``.

The strawman exists to make the E5 comparison three-way: it shows that simple
symmetric backoff already beats the prior art's receiver cost, and that the
paper's propagation/request machinery is what buys the further improvement to
``T^{1/3}`` (and ``T^{1/(k+1)}`` in general).  It is our construction, not a
published protocol, and is documented as such.
"""

from __future__ import annotations

from .base import EpochBaseline

__all__ = ["BalancedBackoffBroadcast"]


class BalancedBackoffBroadcast(EpochBaseline):
    """Alice and receivers both duty-cycle at ``2^{-i/2}`` per epoch."""

    protocol_name = "balanced-backoff"

    def __init__(self, *args, oversample: float = 4.0, **kwargs) -> None:
        """``oversample`` multiplies both probabilities to keep the per-epoch
        success probability comfortably constant at small epoch sizes."""

        super().__init__(*args, **kwargs)
        if oversample <= 0:
            raise ValueError(f"oversample must be positive, got {oversample}")
        self.oversample = oversample

    def epoch_length(self, epoch: int) -> int:
        return 2 ** epoch

    def alice_send_probability(self, epoch: int) -> float:
        return min(1.0, self.oversample * 2.0 ** (-epoch / 2.0))

    def node_listen_probability(self, epoch: int) -> float:
        return min(1.0, self.oversample * 2.0 ** (-epoch / 2.0))
