"""Baseline broadcast protocols used as comparators by the experiments."""

from .base import EpochBaseline
from .ksy import GOLDEN_RATIO, KSYStyleBroadcast
from .naive import NaiveBroadcast
from .uncoordinated import BalancedBackoffBroadcast

__all__ = [
    "BalancedBackoffBroadcast",
    "EpochBaseline",
    "GOLDEN_RATIO",
    "KSYStyleBroadcast",
    "NaiveBroadcast",
]
