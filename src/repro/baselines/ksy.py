"""A King–Saia–Young-style comparator (PODC 2011, "Conflict on a Communication Channel").

The paper positions itself against the first resource-competitive
communication protocol, in which a sender defeats a jammer at expected cost
``O(T^{φ-1}) = O(T^{0.62})`` while — in the n-receiver scenario the related
work discusses — each receiving node still pays ``Θ(T)`` and the protocol is
therefore not load balanced.

We reproduce that *cost profile* (sender ``≈ T^{0.62}``, receivers ``≈ T``)
with an epoch protocol: epoch ``i`` has ``2^i`` slots, Alice transmits in a
``2^{-(2-φ)·i}``-fraction of them (so her per-epoch cost is ``≈ 2^{(φ-1)·i}``),
and uninformed receivers listen in every slot.  If the jammer disrupts at most
half of the epoch, each listening node catches one of Alice's ``≳ 2^{0.62·i}``
surviving transmissions with overwhelming probability, so the run ends within
a constant number of epochs of Carol's budget running dry — exactly the
behaviour the asymptotic comparison needs.  The reconstruction is documented
as a substitution in DESIGN.md (the original protocol's internals differ, its
cost exponents do not).
"""

from __future__ import annotations

import math

from .base import EpochBaseline

__all__ = ["KSYStyleBroadcast", "GOLDEN_RATIO"]

GOLDEN_RATIO = (1.0 + math.sqrt(5.0)) / 2.0
"""φ = (1 + √5) / 2 ≈ 1.618; the KSY sender exponent is φ - 1 ≈ 0.618."""


class KSYStyleBroadcast(EpochBaseline):
    """Sender pays ``≈ T^{φ-1}``, each receiver pays ``≈ T`` (not load balanced)."""

    protocol_name = "ksy"

    def epoch_length(self, epoch: int) -> int:
        return 2 ** epoch

    def alice_send_probability(self, epoch: int) -> float:
        # Sending in a 2^{-(2-φ)i} fraction of the 2^i slots costs 2^{(φ-1)i}.
        return min(1.0, 2.0 ** (-(2.0 - GOLDEN_RATIO) * epoch))

    def node_listen_probability(self, epoch: int) -> float:
        return 1.0
