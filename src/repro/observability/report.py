"""Trace analysis: summarise one run trace or diff two.

Works on the :class:`~repro.observability.trace.TraceEvent` streams produced
by the orchestrators/engines (``kind="phase"`` / ``"engine"`` /
``"quiet-expire"`` / ``"truncate"`` …), on runner-stage ``"span"`` events, and
on the trial runner's ``"fault"`` events (retries, timeouts, worker deaths,
quarantines), whether collected in memory
(:class:`~repro.observability.trace.TraceCollector`) or loaded from JSONL.
``tools/trace_report.py`` is the CLI wrapper.

The diff is sequence-positional: two runs of the same configuration execute
the same schedule until something diverges, so phase events are aligned by
execution order and compared field by field — which is exactly how you show
*where* ``pipeline=True`` starts scheduling different phases than
``pipeline=False``, or which request phase a different quiet rule first
retires nodes in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .trace import TraceEvent

__all__ = [
    "phase_rows",
    "round_rows",
    "runner_spans",
    "span_events",
    "fault_rows",
    "summarise_trace",
    "PhaseDivergence",
    "diff_phase_events",
    "diff_traces",
]

#: Phase-event payload fields compared by the diff, in report order.
DEFAULT_DIFF_FIELDS: Tuple[str, ...] = (
    "num_slots",
    "newly_informed",
    "informed_total",
    "active_uninformed",
    "frontier",
    "jammed_slots",
    "delivery_slots",
    "adversary_spend",
    "alice_cost",
    "nodes_cost",
)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _table(columns: Sequence[str], rows: Iterable[Dict[str, object]]) -> str:
    rows = list(rows)
    cells = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in cells)) if cells else len(col)
        for i, col in enumerate(columns)
    ]
    lines = [
        "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns)),
        "  ".join("-" * widths[i] for i in range(len(columns))),
    ]
    lines += ["  ".join(r[i].ljust(widths[i]) for i in range(len(columns))) for r in cells]
    return "\n".join(lines)


def phase_rows(events: Sequence[TraceEvent]) -> List[TraceEvent]:
    """The ``"phase"`` events of a trace, in execution order."""

    return [event for event in events if event.kind == "phase"]


def round_rows(events: Sequence[TraceEvent]) -> List[Dict[str, object]]:
    """Aggregate a trace into one row per protocol round.

    Sums the per-phase tallies (slots, deliveries, jamming, energy deltas)
    and keeps the end-of-round population counts from the round's last phase,
    plus the round's quiet-rule expiries and truncation give-ups.
    """

    rows: Dict[int, Dict[str, object]] = {}
    order: List[int] = []
    for event in events:
        if event.kind not in ("phase", "quiet-expire", "truncate"):
            continue
        row = rows.get(event.round_index)
        if row is None:
            row = rows[event.round_index] = {
                "round": event.round_index,
                "phases": 0,
                "slots": 0,
                "newly_informed": 0,
                "jammed_slots": 0,
                "delivery_slots": 0,
                "adversary_spend": 0.0,
                "alice_cost": 0.0,
                "nodes_cost": 0.0,
                "quiet_expired": 0,
                "truncated": 0,
                "frontier_end": 0,
                "uninformed_end": 0,
            }
            order.append(event.round_index)
        if event.kind == "quiet-expire":
            row["quiet_expired"] += int(event.data.get("count", 0))
            continue
        if event.kind == "truncate":
            row["truncated"] += int(event.data.get("count", 0))
            continue
        data = event.data
        row["phases"] += 1
        row["slots"] += int(data.get("num_slots", 0))
        row["newly_informed"] += int(data.get("newly_informed", 0))
        row["jammed_slots"] += int(data.get("jammed_slots", 0))
        row["delivery_slots"] += int(data.get("delivery_slots", 0))
        row["adversary_spend"] += float(data.get("adversary_spend", 0.0))
        row["alice_cost"] += float(data.get("alice_cost", 0.0))
        row["nodes_cost"] += float(data.get("nodes_cost", 0.0))
        row["frontier_end"] = int(data.get("frontier", 0))
        row["uninformed_end"] = int(data.get("active_uninformed", 0))
    return [rows[r] for r in order]


def runner_spans(events: Sequence[TraceEvent]) -> List[Dict[str, object]]:
    """The ``"span"`` events as ``{"stage", "seconds"}`` rows, in order."""

    return [
        {"stage": event.phase, "seconds": float(event.data.get("seconds", 0.0))}
        for event in events
        if event.kind == "span"
    ]


def span_events(spans: Iterable[object]) -> List[TraceEvent]:
    """Convert runner :class:`~repro.experiments.runner.TimedSpan` records
    (anything with ``name`` and ``seconds`` attributes) into ``"span"`` trace
    events, so sweep-stage wall-clock can live in the same JSONL file as a
    run trace."""

    return [
        TraceEvent(kind="span", phase=str(span.name), data={"seconds": float(span.seconds)})
        for span in spans
    ]


def fault_rows(events: Sequence[TraceEvent]) -> List[Dict[str, object]]:
    """The ``"fault"`` events (runner fault handling) as table rows, in order.

    One row per fault-handling decision the trial runner recorded: retries
    with their backoff delay, pool-level timeout / worker-death incidents,
    quarantines, cache-disable and pool-degradation notices.
    """

    return [
        {
            "fault": event.data.get("fault", ""),
            "labels": event.data.get("labels", ""),
            "trial": event.data.get("trial_index", ""),
            "attempt": event.data.get("attempt", ""),
            "delay_s": event.data.get("delay_s", 0.0),
            "detail": event.data.get("detail", ""),
        }
        for event in events
        if event.kind == "fault"
    ]


def summarise_trace(events: Sequence[TraceEvent]) -> str:
    """Human-readable summary of one trace: run header, per-round table, totals."""

    lines: List[str] = []
    for event in events:
        if event.kind == "run-start":
            meta = "  ".join(f"{key}={_fmt(val)}" for key, val in sorted(event.data.items()))
            lines.append(f"run-start: {meta}")
    rounds = round_rows(events)
    if rounds:
        lines.append("")
        lines.append(
            _table(
                [
                    "round",
                    "phases",
                    "slots",
                    "newly_informed",
                    "jammed_slots",
                    "adversary_spend",
                    "alice_cost",
                    "nodes_cost",
                    "quiet_expired",
                    "truncated",
                    "frontier_end",
                    "uninformed_end",
                ],
                rounds,
            )
        )
        lines.append("")
        lines.append(
            "totals: "
            + ", ".join(
                f"{key}={_fmt(sum(row[key] for row in rounds))}"
                for key in (
                    "phases",
                    "slots",
                    "newly_informed",
                    "jammed_slots",
                    "adversary_spend",
                    "quiet_expired",
                    "truncated",
                )
            )
        )
    for event in events:
        if event.kind == "cap":
            lines.append(f"terminated at the round cap (round {event.round_index})")
        if event.kind == "run-end":
            meta = "  ".join(f"{key}={_fmt(val)}" for key, val in sorted(event.data.items()))
            lines.append(f"run-end: {meta}")
    spans = runner_spans(events)
    if spans:
        lines.append("")
        lines.append("runner stages:")
        lines.append(_table(["stage", "seconds"], spans))
    faults = fault_rows(events)
    if faults:
        lines.append("")
        lines.append("runner faults:")
        lines.append(
            _table(["fault", "labels", "trial", "attempt", "delay_s", "detail"], faults)
        )
        counts: Dict[str, int] = {}
        for row in faults:
            counts[str(row["fault"])] = counts.get(str(row["fault"]), 0) + 1
        lines.append(
            "fault totals: "
            + ", ".join(f"{kind}={count}" for kind, count in sorted(counts.items()))
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class PhaseDivergence:
    """One position at which two traces' phase streams disagree.

    ``field`` is ``"<schedule>"`` when the phases themselves differ (different
    round/phase name at this position, or one trace ran out of phases) and a
    payload field name otherwise.
    """

    index: int
    round_index: int
    phase: str
    field: str
    left: object
    right: object


def diff_phase_events(
    left: Sequence[TraceEvent],
    right: Sequence[TraceEvent],
    fields: Optional[Sequence[str]] = None,
) -> List[PhaseDivergence]:
    """Positionally compare two traces' ``"phase"`` events.

    Returns every divergence, in execution order: schedule divergences (the
    two runs executed different phases at the same position) and payload
    divergences (same phase, different measured values for a compared field).
    """

    fields = tuple(fields) if fields is not None else DEFAULT_DIFF_FIELDS
    a, b = phase_rows(left), phase_rows(right)
    out: List[PhaseDivergence] = []
    for index in range(max(len(a), len(b))):
        if index >= len(a) or index >= len(b):
            present = a[index] if index < len(a) else b[index]
            out.append(
                PhaseDivergence(
                    index=index,
                    round_index=present.round_index,
                    phase=present.phase,
                    field="<schedule>",
                    left=f"{a[index].round_index}/{a[index].phase}" if index < len(a) else "<absent>",
                    right=f"{b[index].round_index}/{b[index].phase}" if index < len(b) else "<absent>",
                )
            )
            continue
        ea, eb = a[index], b[index]
        if (ea.round_index, ea.phase) != (eb.round_index, eb.phase):
            out.append(
                PhaseDivergence(
                    index=index,
                    round_index=ea.round_index,
                    phase=ea.phase,
                    field="<schedule>",
                    left=f"{ea.round_index}/{ea.phase}",
                    right=f"{eb.round_index}/{eb.phase}",
                )
            )
            continue
        for field in fields:
            va, vb = ea.data.get(field), eb.data.get(field)
            if va != vb:
                out.append(
                    PhaseDivergence(
                        index=index,
                        round_index=ea.round_index,
                        phase=ea.phase,
                        field=field,
                        left=va,
                        right=vb,
                    )
                )
    return out


def diff_traces(
    left: Sequence[TraceEvent],
    right: Sequence[TraceEvent],
    fields: Optional[Sequence[str]] = None,
    max_rows: int = 40,
) -> str:
    """Render a positional diff of two traces as text.

    Shows the first divergence prominently (the round/phase where the two
    runs stop agreeing), then up to ``max_rows`` divergence rows, then a
    per-trace totals line so gross differences (slots executed, rounds run)
    are visible even when the row list is truncated.
    """

    divergences = diff_phase_events(left, right, fields=fields)
    a, b = phase_rows(left), phase_rows(right)
    lines = [f"phases: left={len(a)} right={len(b)}"]
    if not divergences:
        lines.append("traces agree on every compared phase field")
        return "\n".join(lines)
    first = divergences[0]
    lines.append(
        f"first divergence: phase #{first.index} (round {first.round_index}, "
        f"{first.phase or '<schedule>'}) field {first.field}: "
        f"{_fmt(first.left)} vs {_fmt(first.right)}"
    )
    lines.append("")
    shown = divergences[:max_rows]
    lines.append(
        _table(
            ["index", "round", "phase", "field", "left", "right"],
            [
                {
                    "index": d.index,
                    "round": d.round_index,
                    "phase": d.phase,
                    "field": d.field,
                    "left": d.left,
                    "right": d.right,
                }
                for d in shown
            ],
        )
    )
    if len(divergences) > len(shown):
        lines.append(f"... {len(divergences) - len(shown)} further divergences")
    for name, events in (("left", left), ("right", right)):
        rounds = round_rows(events)
        total_slots = sum(int(row["slots"]) for row in rounds)
        lines.append(
            f"{name} totals: rounds={len(rounds)} slots={total_slots} "
            f"informed={sum(int(row['newly_informed']) for row in rounds)}"
        )
    return "\n".join(lines)
