"""Phase-level run tracing.

The paper analyses the protocol through per-phase quantities — how many slots
were noisy, how fast the informed set grows, what each side spent — but the
simulator's default outputs are end-of-run aggregates.  This module adds the
missing middle layer: a :class:`TraceRecorder` sink that the orchestrators and
every execution-engine path feed with structured :class:`TraceEvent` records
while a run unfolds.

The one hard rule of the recording layer: **observing a run must never change
it**.  Every producer only *reads* values the run has already computed (state
counts, ledger totals, sampled tallies) — no recorder call touches an RNG
stream, a schedule decision, or any mutable protocol state — so a traced run
is bit-identical to an untraced one.  ``tests/test_observability.py`` pins
that guarantee with exact golden equality on all three engine paths.

The default sink is :data:`NULL_RECORDER`, whose :attr:`~TraceRecorder.enabled`
flag is ``False``; producers check the flag before building an event, so the
untraced hot path pays one attribute read per phase and allocates nothing.

Events serialise to JSONL (one event per line) via :func:`write_jsonl` /
:func:`read_jsonl`; ``tools/trace_report.py`` summarises one trace or diffs
two.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Protocol, Union, runtime_checkable

__all__ = [
    "TraceEvent",
    "TraceRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "TraceCollector",
    "engine_event",
    "write_jsonl",
    "read_jsonl",
]

Scalar = Union[str, int, float, bool]


@dataclass(frozen=True)
class TraceEvent:
    """One structured telemetry record emitted during a run.

    Attributes
    ----------
    kind:
        Event type.  The producers in this repository emit:

        * ``"run-start"`` / ``"run-end"`` — orchestrator run boundaries;
        * ``"phase"`` — one executed phase, post-state-transition (the
          per-round trace the report tooling aggregates);
        * ``"engine"`` — the executing engine path's channel-level tallies
          for the same phase (emitted before the orchestrator's ``"phase"``
          record, one per engine invocation);
        * ``"quiet-expire"`` — a request-phase quiet-rule budget expiry
          cohort (multi-hop only);
        * ``"truncate"`` — a cap-aware truncation decision (multi-hop only);
        * ``"cap"`` — the safety-cap finalisation of a run that never
          terminated on its own;
        * ``"span"`` — a named wall-clock span (runner-stage profiling);
        * ``"fault"`` — one fault-handling decision by the trial runner
          (retry / timeout / worker-death / quarantine / cache-disabled /
          pool-degraded; see ``repro.experiments.faults.FaultEvent``).
    round_index:
        Protocol round the event belongs to; ``-1`` for run-level events.
    phase:
        Phase name (``"inform"``, ``"propagation:1"``, ``"request"`` …) for
        phase-scoped events, ``""`` otherwise.
    data:
        Flat scalar payload.  Keys are stable per kind; values are JSON
        scalars (non-finite floats survive the JSONL round trip).
    """

    kind: str
    round_index: int = -1
    phase: str = ""
    data: Dict[str, Scalar] = field(default_factory=dict)


@runtime_checkable
class TraceRecorder(Protocol):
    """Structural interface of a trace sink.

    ``enabled`` is the producers' fast-path guard: when ``False`` they skip
    event construction entirely, so a disabled recorder costs one attribute
    read per phase.  Implementations must treat :meth:`record` as read-only
    with respect to the run — a recorder that mutated protocol state or drew
    randomness would void the traced-equals-untraced guarantee.
    """

    enabled: bool

    def record(self, event: TraceEvent) -> None:
        """Receive one event."""


class NullRecorder:
    """The default sink: discards everything, advertises ``enabled = False``."""

    enabled = False

    def record(self, event: TraceEvent) -> None:  # pragma: no cover - guarded out
        pass


NULL_RECORDER = NullRecorder()
"""Shared default instance; producers fall back to it when no recorder is given."""


def engine_event(path: str, result: object, **extra: Scalar) -> TraceEvent:
    """Build the standard ``"engine"`` event from a ``PhaseResult``.

    Duck-typed on the result's channel-level tallies so both engines (and all
    three fast-engine paths) share one payload shape; ``path`` names the code
    path that executed the phase (``"single-hop"``, ``"multihop-dense"``,
    ``"multihop-sparse"``, ``"slot"``).  Reads only values the engine has
    already computed.
    """

    plan = result.plan  # type: ignore[attr-defined]
    data: Dict[str, Scalar] = {
        "path": path,
        "kind": plan.kind.value,
        "num_slots": int(plan.num_slots),
        "jammed_slots": int(result.jammed_slots),  # type: ignore[attr-defined]
        "busy_slots": int(result.busy_slots),  # type: ignore[attr-defined]
        "delivery_slots": int(result.delivery_slots),  # type: ignore[attr-defined]
        "newly_informed": len(result.newly_informed),  # type: ignore[attr-defined]
        "spoofed_transmissions": int(result.spoofed_transmissions),  # type: ignore[attr-defined]
        "adversary_spend": float(result.adversary_spend),  # type: ignore[attr-defined]
        "alice_noisy_heard": int(result.alice_noisy_heard),  # type: ignore[attr-defined]
        "request_noisy_total": float(sum(result.node_noisy_heard.values())),  # type: ignore[attr-defined]
    }
    data.update(extra)
    return TraceEvent(
        kind="engine",
        round_index=int(plan.round_index),
        phase=str(plan.name),
        data=data,
    )


class TraceCollector:
    """In-memory recorder: appends every event to :attr:`events`.

    The reference implementation for tests, notebooks, and the report
    tooling; export with :func:`write_jsonl`.
    """

    enabled = True

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """Convenience filter: all recorded events of one kind, in order."""

        return [event for event in self.events if event.kind == kind]

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceCollector(events={len(self.events)})"


# --------------------------------------------------------------------------- #
# JSONL export / import                                                       #
# --------------------------------------------------------------------------- #


def _encode_scalar(value: Scalar) -> Scalar:
    """Make one payload value JSON-safe (JSON has no inf/nan literals)."""

    if isinstance(value, float) and not math.isfinite(value):
        return "inf" if value > 0 else ("-inf" if value < 0 else "nan")
    return value


_NON_FINITE = {"inf": math.inf, "-inf": -math.inf, "nan": math.nan}


def _decode_scalar(value: Scalar) -> Scalar:
    if isinstance(value, str) and value in _NON_FINITE:
        return _NON_FINITE[value]
    return value


def write_jsonl(events: Iterable[TraceEvent], path: "str | os.PathLike") -> int:
    """Write events to ``path``, one JSON object per line; returns the count."""

    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            payload = {
                "kind": event.kind,
                "round": event.round_index,
                "phase": event.phase,
                "data": {key: _encode_scalar(val) for key, val in event.data.items()},
            }
            handle.write(json.dumps(payload, sort_keys=True) + "\n")
            count += 1
    return count


def read_jsonl(path: "str | os.PathLike") -> List[TraceEvent]:
    """Load a trace written by :func:`write_jsonl` (blank lines are skipped)."""

    events: List[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_number}: not valid JSON: {exc}") from None
            if not isinstance(payload, dict) or "kind" not in payload:
                raise ValueError(f"{path}:{line_number}: not a trace event object")
            events.append(
                TraceEvent(
                    kind=str(payload["kind"]),
                    round_index=int(payload.get("round", -1)),
                    phase=str(payload.get("phase", "")),
                    data={
                        str(key): _decode_scalar(val)
                        for key, val in dict(payload.get("data", {})).items()
                    },
                )
            )
    return events
