"""Live sweep progress: per-work-unit events, aggregation, CLI rendering.

The experiment runner (:func:`repro.experiments.runner.run_sweep`) completes
one *work unit* per (sweep point × trial) — served from the trial cache or
computed by a worker process — and, when a progress sink is active, emits one
:class:`ProgressEvent` per unit **in the parent process**.  Nothing here runs
in a worker, so progress observation cannot perturb trial execution, and with
no sink active the runner does not even read the clock.

:class:`ProgressMonitor` folds the event stream into throughput / ETA /
cache-hit-rate aggregates; :class:`CliProgressRenderer` draws a throttled
single-line follower on a terminal stream (opt-in via ``--progress`` on the
generator tools and benchmarks — off by default, so generated documents and
benchmark output stay byte-identical).

This event shape is deliberately the wire format of the ROADMAP's distributed
sweep fabric: a remote coordinator streaming per-unit completions to a
dashboard sends exactly these fields.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import IO, Optional, Tuple

__all__ = ["ProgressEvent", "ProgressMonitor", "CliProgressRenderer"]


@dataclass(frozen=True)
class ProgressEvent:
    """One completed work unit of a sweep.

    Attributes
    ----------
    labels:
        The sweep-point labels of the unit's :class:`~repro.experiments.runner.TrialSpec`.
    trial_index:
        Trial number within the sweep point.
    cache_hit:
        Whether the unit was served from the trial store (``True``) or
        computed (``False``).
    completed:
        Units completed so far in this sweep, including this one.
    total:
        Total units of the sweep (``len(specs) × settings.trials``).
    elapsed:
        Parent-side wall-clock seconds since the sweep started.
    """

    labels: Tuple[object, ...]
    trial_index: int
    cache_hit: bool
    completed: int
    total: int
    elapsed: float


class ProgressMonitor:
    """Aggregate a :class:`ProgressEvent` stream into rates and an ETA.

    Feed it events via :meth:`observe` (the callable shape the runner's
    progress sinks expect).  Sweeps may arrive back to back — an experiment
    is often several nested ``run_sweep`` calls — so the monitor detects
    sweep boundaries (the per-event ``completed`` counter restarting, or the
    per-sweep ``total`` changing) and accumulates totals and wall-clock
    across them.
    """

    def __init__(self) -> None:
        self.completed = 0
        self.cache_hits = 0
        self.executed = 0
        self.total = 0
        self._sweep_total: Optional[int] = None
        self._last_completed = 0
        self._banked_elapsed = 0.0
        self._current_elapsed = 0.0

    def observe(self, event: ProgressEvent) -> None:
        new_sweep = (
            self._sweep_total is None
            or event.total != self._sweep_total
            or event.completed <= self._last_completed
        )
        if new_sweep:
            self.total += event.total
            self._sweep_total = event.total
            self._banked_elapsed += self._current_elapsed
            self._current_elapsed = 0.0
        self._last_completed = event.completed
        self._current_elapsed = max(self._current_elapsed, event.elapsed)
        self.completed += 1
        if event.cache_hit:
            self.cache_hits += 1
        else:
            self.executed += 1

    @property
    def elapsed(self) -> float:
        """Wall-clock seconds across all observed sweeps."""

        return self._banked_elapsed + self._current_elapsed

    @property
    def remaining(self) -> int:
        return max(self.total - self.completed, 0)

    @property
    def throughput(self) -> float:
        """Completed units per second of sweep wall-clock (0 before any time passes)."""

        if self.elapsed <= 0.0:
            return 0.0
        return self.completed / self.elapsed

    @property
    def eta_seconds(self) -> Optional[float]:
        """Estimated seconds to finish the current totals, or ``None`` pre-throughput."""

        rate = self.throughput
        if rate <= 0.0:
            return None
        return self.remaining / rate

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of completed units served by the trial store."""

        if self.completed == 0:
            return 0.0
        return self.cache_hits / self.completed

    def status_line(self) -> str:
        """A compact human-readable one-liner of the current aggregates."""

        eta = self.eta_seconds
        eta_text = f"{eta:.0f}s" if eta is not None else "—"
        return (
            f"{self.completed}/{self.total} units  "
            f"{self.throughput:.1f}/s  eta {eta_text}  "
            f"cache {self.cache_hit_rate * 100.0:.0f}%"
        )


class CliProgressRenderer:
    """Throttled single-line CLI follower over a :class:`ProgressMonitor`.

    Call the instance with each event (it is a valid progress sink); call
    :meth:`finish` when the followed task completes to seal the line with a
    newline.  Rendering goes to ``stream`` (stderr by default) so stdout and
    generated artefacts stay byte-identical whether or not a follower is
    attached.
    """

    def __init__(
        self,
        label: str = "",
        stream: Optional[IO[str]] = None,
        min_interval: float = 0.2,
    ) -> None:
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self.monitor = ProgressMonitor()
        self._last_render = 0.0
        self._rendered_any = False

    def __call__(self, event: ProgressEvent) -> None:
        self.monitor.observe(event)
        now = time.monotonic()
        if (
            event.completed == event.total
            or now - self._last_render >= self.min_interval
        ):
            self._last_render = now
            self._render()

    def _render(self, end: str = "\r") -> None:
        prefix = f"{self.label}: " if self.label else ""
        self.stream.write(f"\r{prefix}{self.monitor.status_line()}{end}")
        self.stream.flush()
        self._rendered_any = True

    def finish(self) -> None:
        """Seal the follower line (newline) after the followed task completes."""

        if self._rendered_any:
            self._render(end="\n")
