"""Run-trace telemetry and live sweep progress.

Three coordinated layers:

* :mod:`repro.observability.trace` — phase-level run tracing: the
  :class:`TraceRecorder` sink the orchestrators and every engine path feed,
  with the hard guarantee that recording never perturbs a run (traced runs
  are bit-identical to untraced ones), plus JSONL export/import.
* :mod:`repro.observability.progress` — per-work-unit sweep progress events
  emitted by the experiment runner, aggregated into throughput/ETA/cache-hit
  rates and rendered by an opt-in CLI follower.
* :mod:`repro.observability.report` — summarise one trace or diff two
  (``tools/trace_report.py`` is the CLI).

This is the observable substrate the ROADMAP's distributed sweep fabric
streams over the wire: the coordinator's event stream is these records.
"""

from .progress import CliProgressRenderer, ProgressEvent, ProgressMonitor
from .report import diff_phase_events, diff_traces, round_rows, span_events, summarise_trace
from .trace import (
    NULL_RECORDER,
    NullRecorder,
    TraceCollector,
    TraceEvent,
    TraceRecorder,
    read_jsonl,
    write_jsonl,
)

__all__ = [
    "CliProgressRenderer",
    "NULL_RECORDER",
    "NullRecorder",
    "ProgressEvent",
    "ProgressMonitor",
    "TraceCollector",
    "TraceEvent",
    "TraceRecorder",
    "diff_phase_events",
    "diff_traces",
    "read_jsonl",
    "round_rows",
    "span_events",
    "summarise_trace",
    "write_jsonl",
]
