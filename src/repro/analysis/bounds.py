"""Closed-form bounds from the paper.

These functions encode the quantitative statements of Theorem 1, Lemmas 9-11,
Lemma 19, and Corollary 1 so that tests and experiments can compare measured
values against the *predicted shape* (exponents, thresholds, budgets) rather
than against magic numbers scattered through the code.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..simulation.config import SimulationConfig

__all__ = [
    "cost_exponent",
    "predicted_alice_cost",
    "predicted_node_cost",
    "no_jamming_alice_cost_bound",
    "no_jamming_node_cost_bound",
    "latency_bound",
    "blocking_round",
    "reactive_f_threshold",
    "TheoremPrediction",
    "predict",
]


def cost_exponent(k: int) -> float:
    """The resource-competitive exponent ``1/(k+1)`` of Theorem 1."""

    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    return 1.0 / (k + 1.0)


def predicted_alice_cost(T: float, n: int, k: int = 2, constant: float = 1.0) -> float:
    """Alice's cost bound ``Õ(T^{1/(k+1)} + 1)``: ``constant·(T^{1/(k+1)}·ln n + ln^{(k+3)/k} n)``.

    The polylogarithmic additive term is Lemma 9's no-jamming cost; for
    ``k = 2`` it is ``O(log^{5/2} n)`` (with ``a = 1/2``).
    """

    log_n = math.log(max(n, 2))
    additive = log_n ** ((k + 3.0) / k)
    return constant * (T ** cost_exponent(k) * log_n + additive)


def predicted_node_cost(T: float, n: int, k: int = 2, constant: float = 1.0) -> float:
    """A correct node's cost bound ``O(T^{1/(k+1)} + polylog n)``."""

    log_n = math.log(max(n, 2))
    additive = log_n ** 1.5
    return constant * (T ** cost_exponent(k) + additive)


def no_jamming_alice_cost_bound(n: int, a: float = 0.5, constant: float = 1.0) -> float:
    """Lemma 9: with no blocked phases Alice pays ``O(log^{3a+1} n)``."""

    return constant * math.log(max(n, 2)) ** (3.0 * a + 1.0)


def no_jamming_node_cost_bound(n: int, b: float = 1.0, constant: float = 1.0) -> float:
    """Lemma 9: with no blocked phases each node pays ``O(log^{(3/2)b} n)``."""

    return constant * math.log(max(n, 2)) ** (1.5 * b)


def latency_bound(n: int, k: int = 2, constant: float = 1.0) -> float:
    """Theorem 1 / Corollary 1: termination within ``O(n^{1+1/k})`` slots."""

    return constant * float(n) ** (1.0 + 1.0 / k)


def blocking_round(config: SimulationConfig, beta: float = 1.0) -> float:
    """The round index beyond which Carol cannot block a phase (Lemma 11).

    Carol's side can jam at most ``C·(f+1)·n^{1+1/k}`` slots in total, so once
    a single phase contains ``(C/β)(f+1)·n^{1+1/k}`` slots she cannot block
    it; solving ``2^{(1+1/k)i}`` against that length gives
    ``i = lg n + (k/(k+1))·lg((C/β)(f+1))``.
    """

    if not (0 < beta <= 1):
        raise ValueError(f"beta must lie in (0, 1], got {beta}")
    k = config.k
    total = (config.budget_constant / beta) * (config.f + 1.0)
    return math.log2(config.n) + (k / (k + 1.0)) * math.log2(max(total, 1.0))


def reactive_f_threshold() -> float:
    """§4.1: the reactive-adversary guarantee is proven for ``f < 1/24``."""

    return 1.0 / 24.0


@dataclass(frozen=True)
class TheoremPrediction:
    """The bundle of Theorem 1 predictions for one configuration and spend."""

    T: float
    n: int
    k: int
    alice_cost_bound: float
    node_cost_bound: float
    latency_bound_slots: float
    delivery_fraction_bound: float

    def scaled(self, constant: float) -> "TheoremPrediction":
        """Rescale the cost bounds by an empirical constant factor."""

        return TheoremPrediction(
            T=self.T,
            n=self.n,
            k=self.k,
            alice_cost_bound=self.alice_cost_bound * constant,
            node_cost_bound=self.node_cost_bound * constant,
            latency_bound_slots=self.latency_bound_slots,
            delivery_fraction_bound=self.delivery_fraction_bound,
        )


def predict(config: SimulationConfig, T: float) -> TheoremPrediction:
    """Theorem 1's predictions for a given configuration and adversary spend."""

    return TheoremPrediction(
        T=T,
        n=config.n,
        k=config.k,
        alice_cost_bound=predicted_alice_cost(T, config.n, config.k),
        node_cost_bound=predicted_node_cost(T, config.n, config.k),
        latency_bound_slots=latency_bound(config.n, config.k),
        delivery_fraction_bound=1.0 - config.epsilon,
    )
