"""Aggregation of repeated randomized trials.

The protocol's guarantees are "with high probability", so every experiment
repeats each configuration over several seeds and reports means, spreads, and
simple confidence intervals.  This module keeps that bookkeeping in one place.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Sequence

import numpy as np

__all__ = ["TrialSummary", "summarize", "aggregate_records", "fraction_meeting"]


@dataclass(frozen=True)
class TrialSummary:
    """Mean / spread summary of one scalar metric across repeated trials."""

    name: str
    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def stderr(self) -> float:
        if self.count <= 1:
            return 0.0
        return self.std / math.sqrt(self.count)

    def confidence_interval(self, z: float = 1.96) -> tuple:
        """A normal-approximation confidence interval for the mean."""

        return (self.mean - z * self.stderr, self.mean + z * self.stderr)

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"{self.name}: {self.mean:.3g} ± {self.stderr:.2g} (min {self.minimum:.3g}, max {self.maximum:.3g}, n={self.count})"


def summarize(name: str, values: Sequence[float]) -> TrialSummary:
    """Summarise a sequence of per-trial scalar measurements."""

    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError(f"cannot summarise empty series {name!r}")
    return TrialSummary(
        name=name,
        count=int(array.size),
        mean=float(array.mean()),
        std=float(array.std(ddof=1)) if array.size > 1 else 0.0,
        minimum=float(array.min()),
        maximum=float(array.max()),
    )


def aggregate_records(records: Iterable[Dict[str, float]]) -> Dict[str, TrialSummary]:
    """Summarise every numeric field across a list of flat records.

    Non-mapping entries are skipped: a sweep run under the default (lenient)
    fault policy replaces a trial that kept failing with a
    ``repro.experiments.faults.TrialFailure`` sentinel, and those carry no
    metrics to aggregate — the surviving trials' statistics are reported and
    the generator tooling surfaces the quarantine count separately.
    """

    rows: List[Dict[str, float]] = [
        row for row in records if isinstance(row, Mapping)
    ]
    if not rows:
        return {}
    keys = sorted({key for row in rows for key in row})
    summaries: Dict[str, TrialSummary] = {}
    for key in keys:
        values = [row[key] for row in rows if key in row and _is_finite(row[key])]
        if values:
            summaries[key] = summarize(key, values)
    return summaries


def fraction_meeting(values: Sequence[float], predicate: Callable[[float], bool]) -> float:
    """Fraction of trials satisfying a predicate (e.g. delivery ≥ 1-ε)."""

    values = list(values)
    if not values:
        return 0.0
    return sum(1 for value in values if predicate(value)) / len(values)


def _is_finite(value: float) -> bool:
    try:
        return math.isfinite(float(value))
    except (TypeError, ValueError):
        return False
