"""Concentration-of-measure helpers.

The paper's analysis leans on two tools: standard multiplicative Chernoff
bounds for independent indicator sums, and the bounded-differences inequality
(its Theorem 2, from Dubhashi & Panconesi) for sums of *dependent* indicators
such as "node u became informed".  These helpers expose both, plus the small
algebraic facts (the paper's Fact 1) used repeatedly by tests to check that
simulated counts stay inside their predicted envelopes.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = [
    "chernoff_upper_tail",
    "chernoff_lower_tail",
    "bounded_difference_tail",
    "fact1_lower_bound",
    "binomial_confidence_radius",
    "expected_unique_successes",
]


def chernoff_upper_tail(mean: float, delta: float) -> float:
    """``P(X ≥ (1+δ)·μ) ≤ exp(-δ²μ/3)`` for a sum of independent 0/1 variables."""

    if mean < 0:
        raise ValueError(f"mean must be non-negative, got {mean}")
    if delta < 0:
        raise ValueError(f"delta must be non-negative, got {delta}")
    return math.exp(-(delta ** 2) * mean / 3.0)


def chernoff_lower_tail(mean: float, delta: float) -> float:
    """``P(X ≤ (1-δ)·μ) ≤ exp(-δ²μ/2)`` for a sum of independent 0/1 variables."""

    if mean < 0:
        raise ValueError(f"mean must be non-negative, got {mean}")
    if not (0 <= delta <= 1):
        raise ValueError(f"delta must lie in [0, 1], got {delta}")
    return math.exp(-(delta ** 2) * mean / 2.0)


def bounded_difference_tail(deviation: float, lipschitz_constants: Sequence[float]) -> float:
    """Theorem 2 of the paper (bounded differences / Azuma–McDiarmid).

    ``P(f ≥ E[f] + λ) ≤ exp(-λ² / (2·Σ cᵢ²))`` and symmetrically for the lower
    tail; ``lipschitz_constants`` are the ``cᵢ``.
    """

    if deviation < 0:
        raise ValueError(f"deviation must be non-negative, got {deviation}")
    denom = 2.0 * sum(float(c) ** 2 for c in lipschitz_constants)
    if denom <= 0:
        return 0.0 if deviation > 0 else 1.0
    return math.exp(-(deviation ** 2) / denom)


def fact1_lower_bound(y: float) -> float:
    """The paper's Fact 1: ``1 - y ≥ e^{-2y}`` for ``y ≤ 1/2`` (returns ``e^{-2y}``)."""

    if y > 0.5:
        raise ValueError(f"Fact 1 requires y <= 1/2, got {y}")
    return math.exp(-2.0 * y)


def binomial_confidence_radius(n_trials: int, p: float, confidence_sigmas: float = 4.0) -> float:
    """A ``k``-sigma radius for a Binomial(n, p) count, used by statistical tests."""

    if n_trials < 0:
        raise ValueError(f"n_trials must be non-negative, got {n_trials}")
    if not (0.0 <= p <= 1.0):
        raise ValueError(f"p must lie in [0, 1], got {p}")
    variance = n_trials * p * (1.0 - p)
    return confidence_sigmas * math.sqrt(max(variance, 0.0))


def expected_unique_successes(population: int, per_trial_probability: float, trials: int) -> float:
    """Expected number of population members that succeed at least once.

    Used to predict the size of the informed sets ``S_{i,h}``:
    ``population · (1 - (1 - p)^{trials})``.
    """

    if population < 0 or trials < 0:
        raise ValueError("population and trials must be non-negative")
    if not (0.0 <= per_trial_probability <= 1.0):
        raise ValueError(f"probability must lie in [0, 1], got {per_trial_probability}")
    return population * (1.0 - (1.0 - per_trial_probability) ** trials)
