"""Empirical exponent fitting.

The headline claims of the paper are power laws — per-device cost
``Õ(T^{1/(k+1)})``, latency ``O(n^{1+1/k})`` — so the experiments need a small
amount of log–log regression machinery to turn measured (x, y) series into
fitted exponents with confidence information.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["PowerLawFit", "fit_power_law", "fit_power_law_with_offset"]


@dataclass(frozen=True)
class PowerLawFit:
    """The result of fitting ``y ≈ coefficient · x^exponent``."""

    exponent: float
    coefficient: float
    r_squared: float
    n_points: int
    offset: float = 0.0

    def predict(self, x: float) -> float:
        return self.offset + self.coefficient * x ** self.exponent

    def __str__(self) -> str:  # pragma: no cover - display helper
        base = f"y ≈ {self.coefficient:.3g}·x^{self.exponent:.3f} (R²={self.r_squared:.3f}, n={self.n_points})"
        if self.offset:
            base = f"y ≈ {self.offset:.3g} + {self.coefficient:.3g}·x^{self.exponent:.3f} (R²={self.r_squared:.3f})"
        return base


def _validate(xs: Sequence[float], ys: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.shape != y.shape:
        raise ValueError(f"x and y must have the same shape, got {x.shape} vs {y.shape}")
    if x.size < 2:
        raise ValueError("at least two points are required to fit a power law")
    mask = (x > 0) & (y > 0)
    if mask.sum() < 2:
        raise ValueError("at least two strictly positive points are required")
    return x[mask], y[mask]


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Least-squares fit of ``log y = log c + α·log x``."""

    x, y = _validate(xs, ys)
    log_x = np.log(x)
    log_y = np.log(y)
    slope, intercept = np.polyfit(log_x, log_y, 1)
    predictions = slope * log_x + intercept
    residual = np.sum((log_y - predictions) ** 2)
    total = np.sum((log_y - log_y.mean()) ** 2)
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return PowerLawFit(
        exponent=float(slope),
        coefficient=float(np.exp(intercept)),
        r_squared=float(r_squared),
        n_points=int(x.size),
    )


def fit_power_law_with_offset(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Fit ``y ≈ y₀ + c·x^α`` with a free additive offset.

    The protocol's measured costs include an additive no-jamming term (the
    polylog part of Theorem 1's ``Õ(T^{1/(k+1)} + 1)``); fitting the offset
    jointly with the power law isolates the jamming-driven component whose
    exponent the theorem predicts.  A non-linear least-squares fit (relative
    error weighting) is attempted first; if it fails or there are too few
    points, the offset is pinned to the smallest-x observation and a log-log
    regression is used instead.
    """

    x, y = _validate(xs, ys)
    order = np.argsort(x)
    x, y = x[order], y[order]

    if x.size >= 4:
        fitted = _curve_fit_offset(x, y)
        if fitted is not None:
            return fitted

    offset = float(y[0])
    adjusted = y - offset
    mask = adjusted > 0
    if mask.sum() < 2:
        fit = fit_power_law(x, y)
        return PowerLawFit(
            exponent=fit.exponent,
            coefficient=fit.coefficient,
            r_squared=fit.r_squared,
            n_points=fit.n_points,
            offset=0.0,
        )
    fit = fit_power_law(x[mask], adjusted[mask])
    return PowerLawFit(
        exponent=fit.exponent,
        coefficient=fit.coefficient,
        r_squared=fit.r_squared,
        n_points=fit.n_points,
        offset=offset,
    )


def _curve_fit_offset(x: np.ndarray, y: np.ndarray) -> PowerLawFit | None:
    """Non-linear ``y = y0 + c·x^α`` fit; returns ``None`` if scipy fails."""

    try:
        from scipy.optimize import curve_fit
    except ImportError:  # pragma: no cover - scipy is a hard dependency of the repo
        return None

    def model(values: np.ndarray, y0: float, coefficient: float, alpha: float) -> np.ndarray:
        return y0 + coefficient * np.power(values, alpha)

    initial = [float(max(y.min(), 0.0)), 1.0, 0.5]
    bounds = ([0.0, 1e-12, 0.0], [float(y.max()), np.inf, 2.0])
    try:
        params, _ = curve_fit(
            model,
            x,
            y,
            p0=initial,
            bounds=bounds,
            sigma=np.maximum(y, 1.0),
            maxfev=20_000,
        )
    except Exception:
        return None
    y0, coefficient, alpha = (float(value) for value in params)
    predictions = model(x, y0, coefficient, alpha)
    total = float(np.sum((y - y.mean()) ** 2))
    residual = float(np.sum((y - predictions) ** 2))
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return PowerLawFit(
        exponent=alpha,
        coefficient=coefficient,
        r_squared=r_squared,
        n_points=int(x.size),
        offset=y0,
    )
