"""Resource-competitiveness analysis of measured runs.

The paper's central quantity is the relationship between Carol's total spend
``T`` and what Alice / each correct node had to spend in response.  This
module turns a collection of :class:`~repro.core.outcome.BroadcastOutcome`
objects (typically one per adversary-budget setting) into fitted cost
exponents and competitive-ratio summaries that experiments compare against
Theorem 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..core.outcome import BroadcastOutcome
from .bounds import cost_exponent
from .fitting import PowerLawFit, fit_power_law_with_offset

__all__ = [
    "CompetitivenessReport",
    "ExponentFit",
    "analyze_outcomes",
    "fit_cell_exponent",
    "summarize_ratios",
]


@dataclass(frozen=True)
class CompetitivenessReport:
    """Fitted cost scaling for one protocol across a sweep of adversary spends."""

    protocol: str
    k: int
    adversary_spends: tuple
    alice_costs: tuple
    node_max_costs: tuple
    node_mean_costs: tuple
    alice_fit: Optional[PowerLawFit]
    node_fit: Optional[PowerLawFit]
    predicted_exponent: float

    @property
    def alice_exponent(self) -> Optional[float]:
        return self.alice_fit.exponent if self.alice_fit else None

    @property
    def node_exponent(self) -> Optional[float]:
        return self.node_fit.exponent if self.node_fit else None

    def exponent_gap(self) -> Optional[float]:
        """How far the measured node exponent sits from the predicted ``1/(k+1)``."""

        if self.node_fit is None:
            return None
        return self.node_fit.exponent - self.predicted_exponent

    def lines(self) -> List[str]:
        """Human-readable report lines used by the benchmark harness."""

        rows = [
            f"protocol={self.protocol}  k={self.k}  predicted exponent 1/(k+1)={self.predicted_exponent:.3f}",
        ]
        if self.alice_fit is not None:
            rows.append(f"  Alice cost vs T:    {self.alice_fit}")
        if self.node_fit is not None:
            rows.append(f"  node max cost vs T: {self.node_fit}")
        return rows


def analyze_outcomes(
    outcomes: Sequence[BroadcastOutcome],
    min_spend: float = 1.0,
) -> CompetitivenessReport:
    """Fit cost-versus-spend exponents for a sweep of outcomes of one protocol.

    Outcomes with adversary spend below ``min_spend`` anchor the additive
    (no-jamming) offset but are excluded from the log-log fit.
    """

    if not outcomes:
        raise ValueError("at least one outcome is required")
    protocol = outcomes[0].protocol
    k = outcomes[0].config.k

    spends = np.array([o.adversary_spend for o in outcomes], dtype=float)
    alice = np.array([o.alice_cost for o in outcomes], dtype=float)
    node_max = np.array([o.max_node_cost for o in outcomes], dtype=float)
    node_mean = np.array([o.mean_node_cost for o in outcomes], dtype=float)

    order = np.argsort(spends)
    spends, alice, node_max, node_mean = (
        spends[order],
        alice[order],
        node_max[order],
        node_mean[order],
    )

    mask = spends >= min_spend
    alice_fit = node_fit = None
    if mask.sum() >= 2:
        alice_fit = fit_power_law_with_offset(spends[mask], alice[mask])
        node_fit = fit_power_law_with_offset(spends[mask], node_max[mask])

    return CompetitivenessReport(
        protocol=protocol,
        k=k,
        adversary_spends=tuple(spends),
        alice_costs=tuple(alice),
        node_max_costs=tuple(node_max),
        node_mean_costs=tuple(node_mean),
        alice_fit=alice_fit,
        node_fit=node_fit,
        predicted_exponent=cost_exponent(k),
    )


@dataclass(frozen=True)
class ExponentFit:
    """A tournament cell's fitted cost exponent, or a flagged sentinel.

    The tournament fits ``cost ≈ c · T^ρ`` per (adversary, protocol,
    topology) cell, but many cells are legitimately degenerate — a spatial
    jammer on a single-hop network never spends, a capped adversary's spend
    saturates, a baseline's cost is flat in ``T``.  Those cells come back
    *flagged* with ``reason`` set instead of raising or diverging, so a
    full leaderboard sweep never aborts on one pathological cell.

    ``ci_low``/``ci_high`` bound the exponent with a large-sample 95%
    interval from the log–log regression slope's standard error — a
    deterministic quantity (no bootstrap resampling), which keeps
    LEADERBOARD.md byte-identical across regenerations.
    """

    exponent: float
    ci_low: float
    ci_high: float
    r_squared: float
    n_points: int
    flagged: bool = False
    reason: str = ""

    @property
    def ok(self) -> bool:
        return not self.flagged

    def label(self) -> str:
        """Compact table cell: ``0.312 [0.28, 0.35]`` or ``— (reason)``."""

        if self.flagged:
            return f"— ({self.reason})"
        return f"{self.exponent:.3f} [{self.ci_low:.2f}, {self.ci_high:.2f}]"

    def as_record(self) -> dict:
        return {
            "exponent": self.exponent,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "r_squared": self.r_squared,
            "n_points": self.n_points,
            "flagged": self.flagged,
            "reason": self.reason,
        }


def _flagged(reason: str, n_points: int, exponent: float = float("nan")) -> ExponentFit:
    return ExponentFit(
        exponent=exponent,
        ci_low=float("nan"),
        ci_high=float("nan"),
        r_squared=float("nan"),
        n_points=n_points,
        flagged=True,
        reason=reason,
    )


def fit_cell_exponent(
    spends: Sequence[float],
    costs: Sequence[float],
    *,
    min_spend: float = 1.0,
    flat_rtol: float = 0.05,
    min_spend_ratio: float = 2.0,
) -> ExponentFit:
    """Fit ``cost ≈ c · spend^ρ`` for one tournament cell, never raising.

    Points with spend below ``min_spend`` (the no-jamming anchor) are
    dropped before fitting.  Degenerate series return a flagged sentinel:

    * fewer than two usable points → ``insufficient-points``;
    * all costs ≤ 0 → ``zero-cost``;
    * spend dynamic range below ``min_spend_ratio`` → ``degenerate-spend-range``
      (a slope over a near-constant abscissa is noise, not an exponent);
    * costs flat within ``flat_rtol`` → ``flat-cost`` with exponent 0.0 —
      the protocol's spend demonstrably does not scale with Carol's.
    """

    x = np.asarray(spends, dtype=float)
    y = np.asarray(costs, dtype=float)
    if x.shape != y.shape:
        raise ValueError(f"spends and costs must have the same shape, got {x.shape} vs {y.shape}")

    usable = np.isfinite(x) & np.isfinite(y) & (x >= min_spend) & (x > 0)
    x, y = x[usable], y[usable]
    if x.size >= 1 and np.all(y <= 0):
        return _flagged("zero-cost", int(x.size))
    positive = y > 0
    x, y = x[positive], y[positive]
    n = int(x.size)
    if n < 2:
        return _flagged("insufficient-points", n)
    if float(x.max()) < min_spend_ratio * float(x.min()):
        return _flagged("degenerate-spend-range", n)
    if float(y.max() - y.min()) <= flat_rtol * float(y.max()):
        return _flagged("flat-cost", n, exponent=0.0)

    order = np.argsort(x, kind="stable")
    log_x = np.log(x[order])
    log_y = np.log(y[order])
    slope, intercept = np.polyfit(log_x, log_y, 1)
    predictions = slope * log_x + intercept
    residual = float(np.sum((log_y - predictions) ** 2))
    total = float(np.sum((log_y - log_y.mean()) ** 2))
    r_squared = 1.0 - residual / total if total > 0 else 1.0

    if n > 2:
        sxx = float(np.sum((log_x - log_x.mean()) ** 2))
        se = float(np.sqrt((residual / (n - 2)) / sxx)) if sxx > 0 else 0.0
    else:
        se = 0.0  # two points pin the line; the interval collapses
    half_width = 1.96 * se
    return ExponentFit(
        exponent=float(slope),
        ci_low=float(slope - half_width),
        ci_high=float(slope + half_width),
        r_squared=float(r_squared),
        n_points=n,
    )


def summarize_ratios(outcomes: Iterable[BroadcastOutcome]) -> dict:
    """Aggregate competitive ratios and load-balance figures across outcomes."""

    outcomes = list(outcomes)
    if not outcomes:
        return {}
    alice_ratios = [o.alice_competitive_ratio for o in outcomes if np.isfinite(o.alice_competitive_ratio)]
    node_ratios = [o.node_competitive_ratio for o in outcomes if np.isfinite(o.node_competitive_ratio)]
    load = [o.load_balance_ratio for o in outcomes if np.isfinite(o.load_balance_ratio)]
    return {
        "runs": len(outcomes),
        "alice_ratio_mean": float(np.mean(alice_ratios)) if alice_ratios else float("nan"),
        "alice_ratio_max": float(np.max(alice_ratios)) if alice_ratios else float("nan"),
        "node_ratio_mean": float(np.mean(node_ratios)) if node_ratios else float("nan"),
        "node_ratio_max": float(np.max(node_ratios)) if node_ratios else float("nan"),
        "load_balance_mean": float(np.mean(load)) if load else float("nan"),
        "delivery_fraction_min": float(min(o.delivery_fraction for o in outcomes)),
    }
