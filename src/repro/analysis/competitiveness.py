"""Resource-competitiveness analysis of measured runs.

The paper's central quantity is the relationship between Carol's total spend
``T`` and what Alice / each correct node had to spend in response.  This
module turns a collection of :class:`~repro.core.outcome.BroadcastOutcome`
objects (typically one per adversary-budget setting) into fitted cost
exponents and competitive-ratio summaries that experiments compare against
Theorem 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..core.outcome import BroadcastOutcome
from .bounds import cost_exponent
from .fitting import PowerLawFit, fit_power_law_with_offset

__all__ = ["CompetitivenessReport", "analyze_outcomes", "summarize_ratios"]


@dataclass(frozen=True)
class CompetitivenessReport:
    """Fitted cost scaling for one protocol across a sweep of adversary spends."""

    protocol: str
    k: int
    adversary_spends: tuple
    alice_costs: tuple
    node_max_costs: tuple
    node_mean_costs: tuple
    alice_fit: Optional[PowerLawFit]
    node_fit: Optional[PowerLawFit]
    predicted_exponent: float

    @property
    def alice_exponent(self) -> Optional[float]:
        return self.alice_fit.exponent if self.alice_fit else None

    @property
    def node_exponent(self) -> Optional[float]:
        return self.node_fit.exponent if self.node_fit else None

    def exponent_gap(self) -> Optional[float]:
        """How far the measured node exponent sits from the predicted ``1/(k+1)``."""

        if self.node_fit is None:
            return None
        return self.node_fit.exponent - self.predicted_exponent

    def lines(self) -> List[str]:
        """Human-readable report lines used by the benchmark harness."""

        rows = [
            f"protocol={self.protocol}  k={self.k}  predicted exponent 1/(k+1)={self.predicted_exponent:.3f}",
        ]
        if self.alice_fit is not None:
            rows.append(f"  Alice cost vs T:    {self.alice_fit}")
        if self.node_fit is not None:
            rows.append(f"  node max cost vs T: {self.node_fit}")
        return rows


def analyze_outcomes(
    outcomes: Sequence[BroadcastOutcome],
    min_spend: float = 1.0,
) -> CompetitivenessReport:
    """Fit cost-versus-spend exponents for a sweep of outcomes of one protocol.

    Outcomes with adversary spend below ``min_spend`` anchor the additive
    (no-jamming) offset but are excluded from the log-log fit.
    """

    if not outcomes:
        raise ValueError("at least one outcome is required")
    protocol = outcomes[0].protocol
    k = outcomes[0].config.k

    spends = np.array([o.adversary_spend for o in outcomes], dtype=float)
    alice = np.array([o.alice_cost for o in outcomes], dtype=float)
    node_max = np.array([o.max_node_cost for o in outcomes], dtype=float)
    node_mean = np.array([o.mean_node_cost for o in outcomes], dtype=float)

    order = np.argsort(spends)
    spends, alice, node_max, node_mean = (
        spends[order],
        alice[order],
        node_max[order],
        node_mean[order],
    )

    mask = spends >= min_spend
    alice_fit = node_fit = None
    if mask.sum() >= 2:
        alice_fit = fit_power_law_with_offset(spends[mask], alice[mask])
        node_fit = fit_power_law_with_offset(spends[mask], node_max[mask])

    return CompetitivenessReport(
        protocol=protocol,
        k=k,
        adversary_spends=tuple(spends),
        alice_costs=tuple(alice),
        node_max_costs=tuple(node_max),
        node_mean_costs=tuple(node_mean),
        alice_fit=alice_fit,
        node_fit=node_fit,
        predicted_exponent=cost_exponent(k),
    )


def summarize_ratios(outcomes: Iterable[BroadcastOutcome]) -> dict:
    """Aggregate competitive ratios and load-balance figures across outcomes."""

    outcomes = list(outcomes)
    if not outcomes:
        return {}
    alice_ratios = [o.alice_competitive_ratio for o in outcomes if np.isfinite(o.alice_competitive_ratio)]
    node_ratios = [o.node_competitive_ratio for o in outcomes if np.isfinite(o.node_competitive_ratio)]
    load = [o.load_balance_ratio for o in outcomes if np.isfinite(o.load_balance_ratio)]
    return {
        "runs": len(outcomes),
        "alice_ratio_mean": float(np.mean(alice_ratios)) if alice_ratios else float("nan"),
        "alice_ratio_max": float(np.max(alice_ratios)) if alice_ratios else float("nan"),
        "node_ratio_mean": float(np.mean(node_ratios)) if node_ratios else float("nan"),
        "node_ratio_max": float(np.max(node_ratios)) if node_ratios else float("nan"),
        "load_balance_mean": float(np.mean(load)) if load else float("nan"),
        "delivery_fraction_min": float(min(o.delivery_fraction for o in outcomes)),
    }
