"""Theory utilities: closed-form bounds, concentration helpers, exponent fits."""

from .bounds import (
    TheoremPrediction,
    blocking_round,
    cost_exponent,
    latency_bound,
    no_jamming_alice_cost_bound,
    no_jamming_node_cost_bound,
    predict,
    predicted_alice_cost,
    predicted_node_cost,
    reactive_f_threshold,
)
from .competitiveness import CompetitivenessReport, analyze_outcomes, summarize_ratios
from .concentration import (
    binomial_confidence_radius,
    bounded_difference_tail,
    chernoff_lower_tail,
    chernoff_upper_tail,
    expected_unique_successes,
    fact1_lower_bound,
)
from .fitting import PowerLawFit, fit_power_law, fit_power_law_with_offset
from .stats import TrialSummary, aggregate_records, fraction_meeting, summarize

__all__ = [
    "aggregate_records",
    "analyze_outcomes",
    "binomial_confidence_radius",
    "blocking_round",
    "bounded_difference_tail",
    "chernoff_lower_tail",
    "chernoff_upper_tail",
    "CompetitivenessReport",
    "cost_exponent",
    "expected_unique_successes",
    "fact1_lower_bound",
    "fit_power_law",
    "fit_power_law_with_offset",
    "fraction_meeting",
    "latency_bound",
    "no_jamming_alice_cost_bound",
    "no_jamming_node_cost_bound",
    "PowerLawFit",
    "predict",
    "predicted_alice_cost",
    "predicted_node_cost",
    "reactive_f_threshold",
    "summarize",
    "summarize_ratios",
    "TheoremPrediction",
    "TrialSummary",
]
