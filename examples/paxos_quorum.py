#!/usr/bin/env python3
"""Almost-everywhere delivery as a building block: reaching a Paxos majority quorum.

The paper motivates (1-ε)-delivery by pointing at quorum-based protocols:
"Alice and others may be attempting to implement Paxos, which relies on the
notion of a majority quorum; therefore, m must reach a majority of the nodes."
This example plays that scenario: Alice broadcasts a proposal while Carol both
jams and — using her n-uniform power — tries to strand a chosen set of
acceptors, and we check whether a majority quorum of informed acceptors
survives every attack level.

Usage::

    python examples/paxos_quorum.py [n]
"""

from __future__ import annotations

import sys

from repro import SimulationConfig, run_broadcast
from repro.adversary import NUniformSplitAdversary, PhaseBlockingAdversary
from repro.experiments import render_table


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    config = SimulationConfig(n=n, f=1.0, k=2, seed=23)
    quorum = n // 2 + 1

    scenarios = [
        ("no attack", "none", None),
        ("blanket blocking, full budget", PhaseBlockingAdversary(), None),
        ("strand 5% of acceptors", NUniformSplitAdversary(target_uninformed=n // 20), None),
        ("strand 20% of acceptors", NUniformSplitAdversary(target_uninformed=n // 5), None),
    ]

    rows = []
    for label, adversary, _ in scenarios:
        outcome = run_broadcast(n=n, seed=23, adversary=adversary)
        informed = outcome.delivery.informed
        rows.append(
            {
                "attack": label,
                "informed acceptors": informed,
                "quorum (n//2+1)": quorum,
                "quorum reached": informed >= quorum,
                "carol spend": outcome.adversary_spend,
                "carol budget share": (
                    outcome.adversary_spend / config.adversary_total_budget
                ),
            }
        )

    print(f"acceptors: {n}, majority quorum: {quorum}")
    print()
    print(
        render_table(
            [
                "attack",
                "informed acceptors",
                "quorum (n//2+1)",
                "quorum reached",
                "carol spend",
                "carol budget share",
            ],
            rows,
        )
    )
    print()
    print("Stranding acceptors is possible only for a bounded fraction of the network and only by")
    print("burning essentially the whole adversarial budget — so the proposal always reaches a")
    print("majority quorum, which is what a Paxos-style protocol needs from its broadcast layer.")


if __name__ == "__main__":
    main()
