#!/usr/bin/env python3
"""Dense WSN under escalating jamming: how the evildoer's bill grows.

The motivating scenario of the paper's introduction: a dense, energy-starved
sensor network where an attacker controls as many devices as the defenders.
The script sweeps the jammer's spend cap from "token effort" to "entire
aggregate budget" and prints, for each level, how long the broadcast was
delayed and how little each correct device had to pay in response — the
``T`` versus ``T^{1/3}`` asymmetry of Theorem 1.

Usage::

    python examples/dense_wsn_jamming.py [n]
"""

from __future__ import annotations

import sys

from repro import SimulationConfig, run_broadcast
from repro.adversary import PhaseBlockingAdversary
from repro.analysis import fit_power_law_with_offset
from repro.experiments import render_table


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    config = SimulationConfig(n=n, f=1.0, k=2, seed=7)
    budget = config.adversary_total_budget

    fractions = [0.0, 0.02, 0.08, 0.25, 0.6, 0.95]
    rows = []
    spends, node_costs = [], []
    for fraction in fractions:
        cap = fraction * budget
        adversary = PhaseBlockingAdversary(max_total_spend=cap) if cap > 0 else "none"
        outcome = run_broadcast(n=n, adversary=adversary, seed=7 + int(fraction * 100))
        rows.append(
            {
                "carol budget share": f"{fraction:.0%}",
                "carol spend T": outcome.adversary_spend,
                "slots to finish": outcome.slots_elapsed,
                "delivery": outcome.delivery_fraction,
                "alice cost": outcome.alice_cost,
                "node mean cost": outcome.mean_node_cost,
                "node cost / T": (
                    outcome.mean_node_cost / outcome.adversary_spend
                    if outcome.adversary_spend
                    else 0.0
                ),
            }
        )
        if outcome.adversary_spend > 0:
            spends.append(outcome.adversary_spend)
            node_costs.append(outcome.mean_node_cost)

    print(f"network: {config.describe()}")
    print()
    print(
        render_table(
            [
                "carol budget share",
                "carol spend T",
                "slots to finish",
                "delivery",
                "alice cost",
                "node mean cost",
                "node cost / T",
            ],
            rows,
        )
    )
    print()
    if len(spends) >= 3:
        fit = fit_power_law_with_offset(spends, node_costs)
        print(f"node cost vs Carol's spend: {fit}")
        print("paper's prediction for k = 2: exponent 1/3 — delaying the message forces Carol to")
        print("outspend every correct device by a polynomially growing factor.")


if __name__ == "__main__":
    main()
