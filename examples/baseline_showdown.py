#!/usr/bin/env python3
"""ε-Broadcast versus the naive strategy and the prior art (King–Saia–Young).

Reproduces the comparison behind the paper's "is it possible to do better?"
question: run four protocols against the same budget-capped phase blocker and
watch how each side's bill scales as the jammer spends more.

Usage::

    python examples/baseline_showdown.py [n]
"""

from __future__ import annotations

import sys

from repro import SimulationConfig, run_broadcast
from repro.adversary import PhaseBlockingAdversary
from repro.baselines import BalancedBackoffBroadcast, KSYStyleBroadcast, NaiveBroadcast
from repro.experiments import render_table


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    config = SimulationConfig(n=n, f=1.0, k=2, seed=3)
    budget = config.adversary_total_budget

    rows = []
    for fraction in (0.1, 0.5, 0.9):
        cap = fraction * budget
        for name, runner in (
            ("epsilon-broadcast", None),
            ("naive", NaiveBroadcast),
            ("ksy-style", KSYStyleBroadcast),
            ("balanced-backoff", BalancedBackoffBroadcast),
        ):
            adversary = PhaseBlockingAdversary(max_total_spend=cap)
            if runner is None:
                outcome = run_broadcast(n=n, seed=3, adversary=adversary)
            else:
                outcome = runner(SimulationConfig(n=n, f=1.0, k=2, seed=3), adversary=adversary).run()
            rows.append(
                {
                    "carol spend T": outcome.adversary_spend,
                    "protocol": name,
                    "alice cost": outcome.alice_cost,
                    "node max cost": outcome.max_node_cost,
                    "delivery": outcome.delivery_fraction,
                }
            )

    print(f"network: {config.describe()}")
    print()
    print(render_table(["carol spend T", "protocol", "alice cost", "node max cost", "delivery"], rows))
    print()
    print("Expected shape (paper §1, §1.2): the naive strategy's costs track T one-for-one; the")
    print("KSY-style protocol protects the sender (≈T^0.62) but not the receivers (≈T); ε-Broadcast")
    print("keeps both near T^(1/3) and is the only load-balanced column.")


if __name__ == "__main__":
    main()
