#!/usr/bin/env python3
"""Reactive jamming and the §4.1 countermeasure: make your own noise.

A reactive jammer senses the channel within the slot (RSSI / CCA) and only
jams when something is on the air.  Against the plain protocol that kills the
broadcast at almost no cost to the attacker; with the decoy-traffic variant
the attacker can no longer tell Alice's message apart from cover traffic and
has to pay for a constant fraction of all busy slots.

Usage::

    python examples/reactive_adversary.py [n]
"""

from __future__ import annotations

import sys

from repro import run_broadcast
from repro.adversary import ReactiveJammer
from repro.experiments import render_table


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    f = 1.0 / 24.0  # the paper's threshold for tolerating a reactive Carol

    scenarios = [
        ("plain protocol, reactive jammer", "epsilon-broadcast", True),
        ("decoy variant, reactive jammer", "decoy", True),
        ("decoy variant, no jammer", "decoy", False),
    ]

    rows = []
    for label, variant, attack in scenarios:
        outcome = run_broadcast(
            n=n,
            f=f,
            seed=11,
            variant=variant,
            adversary=ReactiveJammer(phase_budget_fraction=0.5) if attack else "none",
        )
        rows.append(
            {
                "scenario": label,
                "delivery": outcome.delivery_fraction,
                "carol spend": outcome.adversary_spend,
                "alice cost": outcome.alice_cost,
                "node mean cost": outcome.mean_node_cost,
                "carol / alice": (
                    outcome.adversary_spend / outcome.alice_cost if outcome.alice_cost else 0.0
                ),
            }
        )

    print(f"n = {n}, f = 1/24 (the reactive-tolerance threshold of §4.1)")
    print()
    print(
        render_table(
            ["scenario", "delivery", "carol spend", "alice cost", "node mean cost", "carol / alice"],
            rows,
        )
    )
    print()
    print("Without decoys the reactive jammer suppresses delivery while spending about as little as")
    print("Alice herself; with decoys she must jam cover traffic too, her bill multiplies, and the")
    print("broadcast goes through — Lemma 19's 'make your own noise' effect.")


if __name__ == "__main__":
    main()
