#!/usr/bin/env python3
"""Quickstart: one ε-Broadcast run with and without a jamming adversary.

Usage::

    python examples/quickstart.py [n]

The script runs the protocol of Gilbert & Young (PODC 2012) on a simulated
single-hop sensor network, first with no attacker and then against a
phase-blocking jammer spending a quarter of Carol's aggregate budget, and
prints the delivery/cost summary of each run.
"""

from __future__ import annotations

import sys

from repro import SimulationConfig, run_broadcast
from repro.adversary import PhaseBlockingAdversary


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    config = SimulationConfig(n=n, f=1.0, k=2, epsilon=0.1, seed=42)

    print(f"network: {config.describe()}")
    print()

    print("--- no adversary ---")
    outcome = run_broadcast(n=n, adversary="none", seed=42)
    print(outcome.summary())
    print()

    print("--- phase-blocking jammer, T = budget/4 ---")
    jammer = PhaseBlockingAdversary(max_total_spend=config.adversary_total_budget / 4)
    outcome = run_broadcast(n=n, adversary=jammer, seed=43)
    print(outcome.summary())
    print()
    print(
        "Carol spent {:.0f} units to delay the broadcast; each correct node spent only {:.0f} "
        "on average ({:.1%} of her spend), which is the resource-competitive asymmetry the paper is about.".format(
            outcome.adversary_spend,
            outcome.mean_node_cost,
            outcome.mean_node_cost / outcome.adversary_spend if outcome.adversary_spend else 0.0,
        )
    )


if __name__ == "__main__":
    main()
