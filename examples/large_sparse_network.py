#!/usr/bin/env python3
"""Demo: ε-Broadcast over a 50,000-device Gilbert graph on a laptop.

Usage::

    PYTHONPATH=src python examples/large_sparse_network.py [n]

Builds a Gilbert random geometric graph at ``n`` devices (default 50,000 —
far beyond what the dense adjacency path could hold), prints the realised
graph's statistics and memory footprint, and drives a short capped
multi-hop broadcast through the vectorised engine's sparse (CSR) path.

The round cap keeps the demo under ~30 s; drop the ``max_round`` override to
let the protocol run to its natural quiet-rule termination (about 12 rounds
and a couple of minutes at n = 10⁵ — see
``benchmarks/bench_sparse_topology.py`` for that full run).
"""

from __future__ import annotations

import sys
import time

from repro.core.broadcast import MultiHopBroadcast
from repro.core.params import ProtocolParameters
from repro.simulation import Network, SimulationConfig, TopologySpec
from repro.simulation.topology import gilbert_connectivity_radius


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 50_000
    radius = 2.0 * gilbert_connectivity_radius(n)
    config = SimulationConfig(
        n=n, seed=2012, topology=TopologySpec.gilbert(radius=radius)
    )

    print(f"building Gilbert graph: n={n:,}, radius={radius:.4f} (2 x r_c) ...")
    start = time.perf_counter()
    network = Network(config)
    topology = network.topology
    print(f"  built in {time.perf_counter() - start:.1f}s, backend={topology.backend}")

    degrees = topology.degrees()
    reachable = len(topology.reachable_from_alice())
    dense_gb = (n + 1) ** 2 / 1e9
    print(f"  mean degree {degrees.mean():.1f} (min {degrees.min()}, max {degrees.max()})")
    print(f"  nodes reachable from Alice: {reachable:,} ({reachable / n:.1%})")
    print(f"  adjacency memory: {network.topology_memory_bytes() / 1e6:.1f} MB "
          f"(dense matrix would need {dense_gb:.1f} GB)")

    # Cap the round schedule so the demo stays interactive; phase lengths grow
    # as 2^(1.5 i), so uncapped large-n runs spend minutes in the last rounds.
    params = ProtocolParameters.from_config(config).with_(max_round=8)
    print("\nrunning capped multi-hop ε-Broadcast (max_round=8, fast engine) ...")
    start = time.perf_counter()
    outcome = MultiHopBroadcast(
        config, params=params, engine="fast", network=network, record_events=False
    ).run()
    print(f"  {outcome.delivery.slots_elapsed:,} slots in "
          f"{time.perf_counter() - start:.1f}s")
    print(f"  informed so far: {outcome.delivery.informed:,} nodes "
          f"(frontier still expanding when the cap hit)")
    print(f"  mean node cost: {outcome.mean_node_cost:.1f} slots, "
          f"Alice cost: {outcome.costs.alice:.1f}")


if __name__ == "__main__":
    main()
